"""Weighted undirected road-network graph.

This is the spatial substrate every index in the library is built on.  The
paper (Def. 1) models a road network as an undirected graph whose vertices are
road segments and whose edge weights are spatial distances.  The class keeps
an adjacency-dict representation for O(1) neighbour/weight access during index
construction, and can export CSR arrays (:mod:`repro.graph.csr`) for
vectorised bulk algorithms.

Vertices are dense integer ids ``0..n-1``.  Edge weights are positive numbers
(the paper uses positive integers; we accept any positive float).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import (
    EdgeNotFoundError,
    GraphError,
    VertexNotFoundError,
)

__all__ = ["RoadNetwork"]


class RoadNetwork:
    """An undirected, positively weighted graph with dense integer vertices.

    Parameters
    ----------
    num_vertices:
        Number of vertices; ids are ``0..num_vertices-1``.
    edges:
        Optional iterable of ``(u, v, weight)`` triples.  Parallel edges are
        collapsed to the minimum weight; self loops are rejected.
    coordinates:
        Optional mapping ``vertex -> (x, y)`` used by A*'s euclidean
        heuristic and by visual examples.  Missing coordinates are allowed.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int, float]] = (),
        coordinates: Mapping[int, tuple[float, float]] | None = None,
    ) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = int(num_vertices)
        self._adj: list[dict[int, float]] = [{} for _ in range(self._n)]
        self._m = 0
        self._mutation_version = 0
        self.coordinates: dict[int, tuple[float, float]] = (
            dict(coordinates) if coordinates else {}
        )
        for u, v, w in edges:
            self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._m

    @property
    def mutation_version(self) -> int:
        """Bumped on every weight/topology change.

        Caches that snapshot edge weights (the flat kernel's adjacency,
        notably) key their staleness checks on this: a weight update that
        leaves every shortest-path label untouched bumps no
        ``label_version`` anywhere, yet still invalidates any cached
        adjacency view of the graph.
        """
        return self._mutation_version

    def vertices(self) -> range:
        """All vertex ids, as a range."""
        return range(self._n)

    def __len__(self) -> int:
        return self._n

    def __contains__(self, vertex: int) -> bool:
        return 0 <= vertex < self._n

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self._n:
            raise VertexNotFoundError(vertex)

    def degree(self, vertex: int) -> int:
        """Vertex degree ``D(v)`` (Def. 2)."""
        self._check_vertex(vertex)
        return len(self._adj[vertex])

    def neighbors(self, vertex: int) -> Iterator[int]:
        """Iterate over the neighbours of ``vertex``."""
        self._check_vertex(vertex)
        return iter(self._adj[vertex])

    def neighbor_items(self, vertex: int) -> Iterator[tuple[int, float]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``vertex``."""
        self._check_vertex(vertex)
        return iter(self._adj[vertex].items())

    def adjacency(self, vertex: int) -> Mapping[int, float]:
        """Read-only view of the adjacency dict of ``vertex``."""
        self._check_vertex(vertex)
        return self._adj[vertex]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises :class:`EdgeNotFoundError`."""
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over undirected edges once each, as ``(u, v, w)``, u < v."""
        for u in range(self._n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield u, v, w

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add an undirected edge (or lower an existing one to ``weight``).

        Parallel edges collapse to the minimum weight, matching how road
        datasets treat duplicate segments.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self loop on vertex {u} is not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        existing = self._adj[u].get(v)
        if existing is None:
            self._m += 1
            self._adj[u][v] = weight
            self._adj[v][u] = weight
            self._mutation_version += 1
        elif weight < existing:
            self._adj[u][v] = weight
            self._adj[v][u] = weight
            self._mutation_version += 1

    def set_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite the weight of an *existing* edge (used by updates)."""
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._mutation_version += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove an existing undirected edge."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._m -= 1
        self._mutation_version += 1

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def copy(self) -> "RoadNetwork":
        """Deep copy of the graph (adjacency and coordinates)."""
        clone = RoadNetwork(self._n, coordinates=self.coordinates)
        clone._adj = [dict(nbrs) for nbrs in self._adj]
        clone._m = self._m
        return clone

    def subgraph(self, vertices: Iterable[int]) -> tuple["RoadNetwork", dict[int, int]]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with vertices relabelled ``0..k-1``) and the
        mapping from original id to new id.
        """
        keep = sorted(set(vertices))
        for v in keep:
            self._check_vertex(v)
        relabel = {old: new for new, old in enumerate(keep)}
        sub = RoadNetwork(len(keep))
        for old in keep:
            if old in self.coordinates:
                sub.coordinates[relabel[old]] = self.coordinates[old]
            for nbr, w in self._adj[old].items():
                if nbr in relabel and old < nbr:
                    sub.add_edge(relabel[old], relabel[nbr], w)
        return sub, relabel

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def __repr__(self) -> str:
        return f"RoadNetwork(n={self._n}, m={self._m})"
