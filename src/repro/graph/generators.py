"""Synthetic road-network generators.

The paper evaluates on real city/state networks (Beijing, NYC, Bay Area,
Colorado).  Those datasets are not available offline, so these generators
produce graphs with road-network characteristics at configurable scale:

* :func:`grid_network` — a perturbed lattice: random edge deletions create
  irregular blocks, random diagonal shortcuts model arterial roads.  Average
  degree lands near the 2.4-2.7 typical of road graphs.
* :func:`ring_radial_network` — a ring-and-spoke city (Beijing-like).
* :func:`random_road_network` — random geometric points connected by a
  Delaunay-ish k-nearest-neighbour rule, kept connected.

All generators attach planar coordinates (for A*'s euclidean heuristic) and
use integer-ish weights proportional to euclidean length, like DIMACS data.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphError
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import largest_component

__all__ = ["grid_network", "ring_radial_network", "random_road_network"]


def _euclid(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def grid_network(
    rows: int,
    cols: int,
    delete_fraction: float = 0.12,
    diagonal_fraction: float = 0.05,
    weight_scale: float = 100.0,
    weight_jitter: float = 0.25,
    seed: int | None = None,
) -> RoadNetwork:
    """A perturbed ``rows x cols`` lattice road network.

    Parameters
    ----------
    delete_fraction:
        Fraction of lattice edges removed (keeps the largest component).
    diagonal_fraction:
        Fraction of cells given one diagonal shortcut (arterials).
    weight_scale, weight_jitter:
        Edge weight is euclidean length * scale * U(1-j, 1+j), rounded to an
        integer >= 1 (DIMACS weights are integers).
    """
    if rows < 2 or cols < 2:
        raise GraphError("grid_network requires rows >= 2 and cols >= 2")
    if not 0 <= delete_fraction < 1:
        raise GraphError(f"delete_fraction must be in [0, 1), got {delete_fraction}")
    rng = np.random.default_rng(seed)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    coords = {}
    for r in range(rows):
        for c in range(cols):
            jitter = rng.uniform(-0.15, 0.15, size=2)
            coords[vid(r, c)] = (c + float(jitter[0]), r + float(jitter[1]))

    graph = RoadNetwork(rows * cols, coordinates=coords)

    def add(u: int, v: int) -> None:
        length = _euclid(coords[u], coords[v])
        w = length * weight_scale * rng.uniform(1 - weight_jitter, 1 + weight_jitter)
        graph.add_edge(u, v, max(1.0, round(w)))

    candidates: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                candidates.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                candidates.append((vid(r, c), vid(r + 1, c)))
    keep = rng.random(len(candidates)) >= delete_fraction
    for flag, (u, v) in zip(keep, candidates):
        if flag:
            add(u, v)
    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() < diagonal_fraction:
                if rng.random() < 0.5:
                    add(vid(r, c), vid(r + 1, c + 1))
                else:
                    add(vid(r, c + 1), vid(r + 1, c))

    component, _ = largest_component(graph)
    return component


def ring_radial_network(
    rings: int,
    spokes: int,
    weight_scale: float = 100.0,
    weight_jitter: float = 0.2,
    seed: int | None = None,
) -> RoadNetwork:
    """A ring-and-spoke city network (centre vertex + concentric rings)."""
    if rings < 1 or spokes < 3:
        raise GraphError("ring_radial_network requires rings >= 1 and spokes >= 3")
    rng = np.random.default_rng(seed)
    coords: dict[int, tuple[float, float]] = {0: (0.0, 0.0)}

    def vid(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * spokes + spoke

    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            angle = 2 * math.pi * spoke / spokes + rng.uniform(-0.05, 0.05)
            radius = ring + rng.uniform(-0.1, 0.1)
            coords[vid(ring, spoke)] = (radius * math.cos(angle), radius * math.sin(angle))

    graph = RoadNetwork(1 + rings * spokes, coordinates=coords)

    def add(u: int, v: int) -> None:
        length = _euclid(coords[u], coords[v])
        w = length * weight_scale * rng.uniform(1 - weight_jitter, 1 + weight_jitter)
        graph.add_edge(u, v, max(1.0, round(w)))

    for spoke in range(spokes):
        add(0, vid(1, spoke))
        for ring in range(1, rings):
            add(vid(ring, spoke), vid(ring + 1, spoke))
    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            add(vid(ring, spoke), vid(ring, (spoke + 1) % spokes))
    return graph


def random_road_network(
    num_vertices: int,
    k_nearest: int = 3,
    weight_scale: float = 100.0,
    weight_jitter: float = 0.2,
    seed: int | None = None,
) -> RoadNetwork:
    """Random geometric road network: k-nearest-neighbour links over points.

    The result is restricted to its largest connected component, so the
    returned graph may be slightly smaller than ``num_vertices``.
    """
    if num_vertices < 2:
        raise GraphError("random_road_network requires num_vertices >= 2")
    if k_nearest < 1:
        raise GraphError(f"k_nearest must be >= 1, got {k_nearest}")
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, math.sqrt(num_vertices), size=(num_vertices, 2))
    coords = {i: (float(x), float(y)) for i, (x, y) in enumerate(points)}
    graph = RoadNetwork(num_vertices, coordinates=coords)

    # brute-force kNN is fine at reproduction scale
    for i in range(num_vertices):
        deltas = points - points[i]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        dists[i] = np.inf
        for j in np.argpartition(dists, k_nearest)[:k_nearest]:
            length = dists[j]
            w = length * weight_scale * rng.uniform(1 - weight_jitter, 1 + weight_jitter)
            graph.add_edge(i, int(j), max(1.0, round(w)))

    component, _ = largest_component(graph)
    return component
