"""Result-quality metrics for FSPQ engines.

Efficiency figures tell half the story; these helpers quantify *answer
quality*:

* :func:`pruning_quality` — how closely FAHL-W's pruned/early-stopped
  answers track the unpruned optimum (path agreement, score gaps): the
  honesty check behind the Fig. 6 speedups, reported in EXPERIMENTS.md.
* :func:`prediction_regret` — how much congestion the user actually hits
  when routes are planned on *predicted* flows but driven under the
  *ground-truth* flows (the quality dimension of Fig. 10).
* :func:`congestion_savings` — flow avoided versus the purely spatial
  route, per query (the paper's motivating Fig. 1 trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import QueryError
from repro.graph.frn import FlowAwareRoadNetwork
from repro.paths.scoring import path_flow

__all__ = [
    "PruningQuality",
    "RegretSummary",
    "congestion_savings",
    "prediction_regret",
    "pruning_quality",
]


@dataclass(frozen=True)
class PruningQuality:
    """Agreement of a pruned engine with an unpruned reference."""

    queries: int
    path_agreement: float      # fraction of identical paths
    mean_score_gap: float      # mean |score(pruned) - score(reference)|
    max_score_gap: float
    mean_candidate_ratio: float  # candidates enumerated, pruned / reference

    def __str__(self) -> str:
        return (
            f"PruningQuality(queries={self.queries}, "
            f"path_agreement={self.path_agreement:.1%}, "
            f"mean_gap={self.mean_score_gap:.4f}, "
            f"max_gap={self.max_score_gap:.4f}, "
            f"candidates={self.mean_candidate_ratio:.2f}x)"
        )


def pruning_quality(
    reference: FlowAwareEngine,
    pruned: FlowAwareEngine,
    queries: list[FSPQuery],
) -> PruningQuality:
    """Compare a pruned engine's answers against a reference engine's."""
    if not queries:
        raise QueryError("pruning_quality needs at least one query")
    agreements = 0
    gaps: list[float] = []
    ratios: list[float] = []
    for query in queries:
        expected = reference.query(query)
        got = pruned.query(query)
        agreements += got.path == expected.path
        gaps.append(abs(got.score - expected.score))
        if expected.num_candidates:
            ratios.append(got.num_candidates / expected.num_candidates)
    return PruningQuality(
        queries=len(queries),
        path_agreement=agreements / len(queries),
        mean_score_gap=float(np.mean(gaps)),
        max_score_gap=float(np.max(gaps)),
        mean_candidate_ratio=float(np.mean(ratios)) if ratios else 1.0,
    )


@dataclass(frozen=True)
class RegretSummary:
    """Extra congestion incurred by planning on imperfect predictions."""

    queries: int
    path_agreement: float     # planned path == oracle-planned path
    mean_flow_regret: float   # mean (true flow of planned - true flow of oracle)
    relative_regret: float    # regret / mean oracle flow

    def __str__(self) -> str:
        return (
            f"RegretSummary(queries={self.queries}, "
            f"path_agreement={self.path_agreement:.1%}, "
            f"relative_regret={self.relative_regret:.2%})"
        )


def prediction_regret(
    frn: FlowAwareRoadNetwork,
    oracle,
    queries: list[FSPQuery],
    alpha: float = 0.5,
    eta_u: float = 3.0,
    max_candidates: int = 16,
) -> RegretSummary:
    """Regret of routing on ``frn.predicted_flow`` vs. the ground truth.

    Builds two engines over the same index: one scoring with the FRN's
    predicted flows (what a deployed system does) and one with the truth
    (the unachievable oracle), and measures the extra *true* congestion the
    predicted plan incurs.
    """
    if not queries:
        raise QueryError("prediction_regret needs at least one query")
    planned_engine = FlowAwareEngine(
        frn, oracle=oracle, alpha=alpha, eta_u=eta_u,
        max_candidates=max_candidates,
    )
    oracle_frn = FlowAwareRoadNetwork(frn.graph, frn.flow, lanes=frn.lanes)
    oracle_engine = FlowAwareEngine(
        oracle_frn, oracle=oracle, alpha=alpha, eta_u=eta_u,
        max_candidates=max_candidates,
    )
    agreements = 0
    regrets: list[float] = []
    oracle_flows: list[float] = []
    for query in queries:
        planned = planned_engine.query(query)
        ideal = oracle_engine.query(query)
        truth = frn.flow_at(query.timestep)
        planned_true_flow = path_flow(truth, list(planned.path))
        ideal_true_flow = path_flow(truth, list(ideal.path))
        agreements += planned.path == ideal.path
        regrets.append(planned_true_flow - ideal_true_flow)
        oracle_flows.append(ideal_true_flow)
    mean_regret = float(np.mean(regrets))
    mean_oracle = float(np.mean(oracle_flows)) or 1.0
    return RegretSummary(
        queries=len(queries),
        path_agreement=agreements / len(queries),
        mean_flow_regret=mean_regret,
        relative_regret=mean_regret / mean_oracle,
    )


def congestion_savings(
    frn: FlowAwareRoadNetwork,
    oracle,
    queries: list[FSPQuery],
    alpha: float = 0.5,
    eta_u: float = 3.0,
    max_candidates: int = 16,
) -> dict[str, float]:
    """Flow avoided (and distance paid) vs. the purely spatial route.

    Returns mean relative flow savings and mean relative detour over the
    workload — the Fig. 1 trade-off quantified.
    """
    if not queries:
        raise QueryError("congestion_savings needs at least one query")
    engine = FlowAwareEngine(
        frn, oracle=oracle, alpha=alpha, eta_u=eta_u,
        max_candidates=max_candidates,
    )
    flow_savings: list[float] = []
    detours: list[float] = []
    for query in queries:
        result = engine.query(query)
        spatial_path = (
            oracle.path(query.source, query.target)
            if hasattr(oracle, "path")
            else list(result.path)
        )
        flow_vector = frn.predicted_at(query.timestep)
        spatial_flow = path_flow(flow_vector, spatial_path)
        if spatial_flow > 0:
            flow_savings.append(1.0 - result.flow / spatial_flow)
        if result.shortest_distance > 0:
            detours.append(result.distance / result.shortest_distance - 1.0)
    return {
        "mean_flow_savings": float(np.mean(flow_savings)) if flow_savings else 0.0,
        "mean_detour": float(np.mean(detours)) if detours else 0.0,
        "queries": float(len(queries)),
    }
