"""ASCII rendering of road networks, congestion fields and routes.

Terminal-friendly visual sanity checks: project vertex coordinates onto a
character grid, shade each cell by its flow percentile, and overlay one or
two routes.  Used by the examples; deliberately dependency-free.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.graph.road_network import RoadNetwork

__all__ = ["render_network", "render_routes"]

# lightest-to-darkest glyphs; no blank so every vertex stays visible
_SHADES = ".:-=+*#%@"


def _grid_projection(
    graph: RoadNetwork,
    width: int,
    height: int,
) -> dict[int, tuple[int, int]]:
    """Map vertex coordinates onto integer character-grid cells."""
    if len(graph.coordinates) < graph.num_vertices:
        raise QueryError("rendering requires coordinates for every vertex")
    xs = np.array([graph.coordinates[v][0] for v in graph.vertices()])
    ys = np.array([graph.coordinates[v][1] for v in graph.vertices()])
    x_span = xs.max() - xs.min() or 1.0
    y_span = ys.max() - ys.min() or 1.0
    cells = {}
    for v in graph.vertices():
        x, y = graph.coordinates[v]
        col = int((x - xs.min()) / x_span * (width - 1))
        row = int((y - ys.min()) / y_span * (height - 1))
        cells[v] = (row, col)
    return cells


def render_network(
    graph: RoadNetwork,
    flow_vector: np.ndarray | None = None,
    width: int = 60,
    height: int = 24,
) -> str:
    """Shade the network by flow percentile (blank cells = no vertex)."""
    if width < 2 or height < 2:
        raise QueryError("render dimensions must be at least 2x2")
    cells = _grid_projection(graph, width, height)
    canvas = [[" "] * width for _ in range(height)]
    if flow_vector is not None:
        flow_vector = np.asarray(flow_vector, dtype=float)
        if flow_vector.shape != (graph.num_vertices,):
            raise QueryError("flow vector must have one entry per vertex")
        spread = flow_vector.max() - flow_vector.min()
        if spread > 0:
            normalized = (flow_vector - flow_vector.min()) / spread
        else:
            normalized = np.zeros_like(flow_vector)
        shades = np.round(normalized * (len(_SHADES) - 1)).astype(int)
    for v, (row, col) in cells.items():
        if flow_vector is None:
            canvas[row][col] = "."
        else:
            # keep the darkest shade when several vertices share a cell
            current = canvas[row][col]
            candidate = _SHADES[shades[v]]
            if current == " " or _SHADES.index(candidate) > _SHADES.index(
                current if current in _SHADES else " "
            ):
                canvas[row][col] = candidate
    return "\n".join("".join(row) for row in canvas)


def render_routes(
    graph: RoadNetwork,
    routes: dict[str, list[int]],
    flow_vector: np.ndarray | None = None,
    width: int = 60,
    height: int = 24,
) -> str:
    """Overlay labelled routes on the shaded network.

    Each route is drawn with the first character of its label; overlapping
    routes show the *later* label.  Endpoints are marked ``S`` and ``T``.
    """
    if not routes:
        raise QueryError("render_routes needs at least one route")
    base = render_network(graph, flow_vector, width=width, height=height)
    canvas = [list(line) for line in base.splitlines()]
    cells = _grid_projection(graph, width, height)
    for label, route in routes.items():
        if not route:
            raise QueryError(f"route {label!r} is empty")
        mark = (label or "?")[0]
        for v in route:
            row, col = cells[v]
            canvas[row][col] = mark
        start_row, start_col = cells[route[0]]
        end_row, end_col = cells[route[-1]]
        canvas[start_row][start_col] = "S"
        canvas[end_row][end_col] = "T"
    legend = "  ".join(
        f"{(label or '?')[0]}={label}" for label in routes
    )
    body = "\n".join("".join(row) for row in canvas)
    return f"{body}\n[{legend}; S=start T=target]"
