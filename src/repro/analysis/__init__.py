"""Result-quality analysis for FSPQ engines."""

from repro.analysis.render import render_network, render_routes
from repro.analysis.quality import (
    PruningQuality,
    RegretSummary,
    congestion_savings,
    prediction_regret,
    pruning_quality,
)

__all__ = [
    "PruningQuality",
    "RegretSummary",
    "congestion_savings",
    "prediction_regret",
    "pruning_quality",
    "render_network",
    "render_routes",
]
