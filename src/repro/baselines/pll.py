"""Pruned Landmark Labeling (Akiba et al.) — the flat 2-hop label baseline.

The paper's related work places FAHL in the 2-hop labeling family
(Cohen et al.; Akiba et al.'s PLL).  PLL assigns every vertex a label of
``(hub, distance)`` pairs by running pruned Dijkstra from vertices in
degree order: a search from hub ``h`` stops expanding at any vertex whose
distance to ``h`` is already covered by earlier labels.  Queries take the
minimum over shared hubs:

.. math::

    d(u, v) = \\min_{h \\in L(u) \\cap L(v)} d(u, h) + d(h, v)

Unlike the tree-decomposition indexes, PLL's labels are not bounded by the
treewidth; on road networks they end up larger — one of the reasons the
H2H line of work (and FAHL) moved to hierarchies.  Included as an extra
comparison point and as a second, independently-implemented exact oracle
for cross-checking the others.
"""

from __future__ import annotations

import heapq
import math

from repro.errors import IndexStateError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import require_connected

__all__ = ["PLLIndex", "build_pll"]


class PLLIndex:
    """Pruned landmark labeling with exact distance queries."""

    def __init__(self, graph: RoadNetwork) -> None:
        if graph.num_vertices == 0:
            raise IndexStateError("cannot index an empty graph")
        require_connected(graph, context="PLL construction")
        self.graph = graph
        n = graph.num_vertices
        # hub order: descending degree (ties by id) — the classic choice
        self.order = sorted(range(n), key=lambda v: (-graph.degree(v), v))
        self._rank = {v: i for i, v in enumerate(self.order)}
        # labels[v]: dict hub -> distance (hubs have rank <= rank of v's
        # covering searches; kept as dict for O(1) intersection probing)
        self.labels: list[dict[int, float]] = [{} for _ in range(n)]
        self._build()

    # ------------------------------------------------------------------
    def _query_with_labels(self, u: int, v: int) -> float:
        """Distance using current (possibly partial) labels."""
        lu, lv = self.labels[u], self.labels[v]
        if len(lu) > len(lv):
            lu, lv = lv, lu
        best = math.inf
        for hub, du in lu.items():
            dv = lv.get(hub)
            if dv is not None and du + dv < best:
                best = du + dv
        return best

    def _build(self) -> None:
        graph = self.graph
        for hub in self.order:
            # pruned Dijkstra from the hub
            dist = {hub: 0.0}
            heap: list[tuple[float, int]] = [(0.0, hub)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist.get(u, math.inf):
                    continue
                # pruning: if existing labels already cover (hub, u) at
                # this distance, neither u nor anything beyond it needs a
                # new entry through this hub
                if self._query_with_labels(hub, u) <= d:
                    continue
                self.labels[u][hub] = d
                for v, w in graph.neighbor_items(u):
                    nd = d + w
                    if nd < dist.get(v, math.inf):
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))

    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> float:
        """Exact shortest distance via hub intersection."""
        n = self.graph.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise QueryError(f"unknown vertices ({u}, {v})")
        if u == v:
            return 0.0
        return self._query_with_labels(u, v)

    def index_size_entries(self) -> int:
        """Total (hub, distance) pairs over all labels."""
        return sum(len(label) for label in self.labels)

    def average_label_size(self) -> float:
        n = self.graph.num_vertices
        return self.index_size_entries() / n if n else 0.0

    def __repr__(self) -> str:
        return (
            f"PLLIndex(n={self.graph.num_vertices}, "
            f"entries={self.index_size_entries()}, "
            f"avg_label={self.average_label_size():.1f})"
        )


def build_pll(graph: RoadNetwork) -> PLLIndex:
    """Build a pruned-landmark-labeling index over ``graph``."""
    return PLLIndex(graph)
