"""Contraction Hierarchies (Geisberger et al.) — label-index baseline.

Standard construction: vertices are contracted in the order of a lazily
updated priority (edge difference + contracted-neighbour count); a shortcut
``(u, w)`` is added for a removed path ``u - v - w`` unless a bounded
*witness search* finds an equally short detour avoiding ``v``.  Queries run
a bidirectional Dijkstra restricted to upward edges and take the best
meeting vertex; paths unpack shortcut middles recursively.

Exactness does not depend on the witness-search limits — a missed witness
only adds a redundant shortcut.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import IndexStateError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import require_connected

__all__ = ["CHIndex", "build_ch"]


class CHIndex:
    """Contraction-hierarchies index with ``distance`` / ``path`` queries.

    Parameters
    ----------
    graph:
        Connected road network.  Construction works on an internal copy of
        the adjacency; the caller's graph is never mutated.
    hop_limit, settle_limit:
        Witness-search budgets (hops / settled vertices).  Smaller budgets
        build faster but add more (redundant) shortcuts.
    """

    def __init__(
        self,
        graph: RoadNetwork,
        hop_limit: int = 5,
        settle_limit: int = 60,
    ) -> None:
        if graph.num_vertices == 0:
            raise IndexStateError("cannot index an empty graph")
        require_connected(graph, context="CH construction")
        self.graph = graph
        self._hop_limit = hop_limit
        self._settle_limit = settle_limit
        self.order = np.zeros(graph.num_vertices, dtype=np.int64)
        # shortcut (min_id, max_id) -> (weight, middle vertex)
        self._shortcuts: dict[tuple[int, int], tuple[float, int]] = {}
        self._upward: list[list[tuple[int, float]]] = []
        self._contract_all()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _witness_exists(
        self,
        adj: list[dict[int, float]],
        source: int,
        target: int,
        skip: int,
        limit: float,
    ) -> bool:
        """Bounded Dijkstra: is there a path <= ``limit`` avoiding ``skip``?"""
        dist = {source: 0.0}
        hops = {source: 0}
        heap = [(0.0, source)]
        settled = 0
        while heap and settled < self._settle_limit:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, math.inf):
                continue
            if u == target:
                return True
            settled += 1
            if hops[u] >= self._hop_limit:
                continue
            for v, w in adj[u].items():
                if v == skip:
                    continue
                nd = d + w
                if nd <= limit and nd < dist.get(v, math.inf):
                    dist[v] = nd
                    hops[v] = hops[u] + 1
                    heapq.heappush(heap, (nd, v))
        return dist.get(target, math.inf) <= limit

    def _priority(
        self, adj: list[dict[int, float]], v: int, deleted: np.ndarray
    ) -> float:
        """Edge difference + contracted-neighbour term (standard heuristic)."""
        nbrs = list(adj[v].items())
        shortcuts = 0
        for i, (x, wx) in enumerate(nbrs):
            for y, wy in nbrs[i + 1:]:
                if not self._witness_exists(adj, x, y, v, wx + wy):
                    shortcuts += 1
        return float(shortcuts - len(nbrs) + deleted[v])

    def _contract_all(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        adj: list[dict[int, float]] = [dict(graph.adjacency(v)) for v in range(n)]
        deleted = np.zeros(n, dtype=np.int64)  # contracted-neighbour counts
        contracted = bytearray(n)

        heap = [(self._priority(adj, v, deleted), v) for v in range(n)]
        heapq.heapify(heap)
        rank = 0
        while heap:
            _, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            # lazy re-evaluation: contract only if still (approximately) min
            current = self._priority(adj, v, deleted)
            if heap and current > heap[0][0]:
                heapq.heappush(heap, (current, v))
                continue
            contracted[v] = 1
            self.order[v] = rank
            rank += 1
            nbrs = list(adj[v].items())
            for x, _ in nbrs:
                del adj[x][v]
                deleted[x] += 1
            for i, (x, wx) in enumerate(nbrs):
                for y, wy in nbrs[i + 1:]:
                    weight = wx + wy
                    if weight < adj[x].get(y, math.inf) and not self._witness_exists(
                        adj, x, y, v, weight
                    ):
                        adj[x][y] = weight
                        adj[y][x] = weight
                        self._shortcuts[(min(x, y), max(x, y))] = (weight, v)
            adj[v] = {}

        # upward adjacency: original edges + shortcuts, low rank -> high rank
        augmented: list[dict[int, float]] = [dict(graph.adjacency(v)) for v in range(n)]
        for (a, b), (weight, _) in self._shortcuts.items():
            if weight < augmented[a].get(b, math.inf):
                augmented[a][b] = weight
                augmented[b][a] = weight
        upward: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for u in range(n):
            for v, w in augmented[u].items():
                if self.order[v] > self.order[u]:
                    upward[u].append((v, w))
        self._upward = upward

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> float:
        """Bidirectional upward Dijkstra distance."""
        dist, _, _ = self._bidirectional(u, v)
        return dist

    def path(self, u: int, v: int) -> list[int]:
        """Concrete shortest path with shortcuts expanded; [] if unreachable."""
        dist, meet, prevs = self._bidirectional(u, v, track=True)
        if not math.isfinite(dist):
            return []
        if u == v:
            return [u]
        spine = [meet]
        node = meet
        while node != u:
            node = prevs[0][node]
            spine.append(node)
        spine.reverse()
        node = meet
        while node != v:
            node = prevs[1][node]
            spine.append(node)
        expanded: list[int] = [spine[0]]
        for a, b in zip(spine, spine[1:]):
            expanded.extend(self._expand(a, b)[1:])
        return expanded

    def _expand(self, a: int, b: int) -> list[int]:
        """Expand one upward edge into original graph edges."""
        key = (min(a, b), max(a, b))
        shortcut = self._shortcuts.get(key)
        if shortcut is None:
            return [a, b]
        weight, mid = shortcut
        if self.graph.has_edge(a, b) and self.graph.weight(a, b) <= weight:
            return [a, b]
        left = self._expand(a, mid)
        right = self._expand(mid, b)
        return left + right[1:]

    def _bidirectional(
        self, u: int, v: int, track: bool = False
    ) -> tuple[float, int, tuple[dict[int, int], dict[int, int]]]:
        n = self.graph.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise QueryError(f"unknown vertices ({u}, {v})")
        if u == v:
            return 0.0, u, ({}, {})
        dists: tuple[dict[int, float], dict[int, float]] = ({u: 0.0}, {v: 0.0})
        prevs: tuple[dict[int, int], dict[int, int]] = ({}, {})
        heaps: list[list[tuple[float, int]]] = [[(0.0, u)], [(0.0, v)]]
        best = math.inf
        meet = -1
        while heaps[0] or heaps[1]:
            for side in (0, 1):
                if not heaps[side]:
                    continue
                d, x = heapq.heappop(heaps[side])
                if d > dists[side].get(x, math.inf) or d > best:
                    continue
                other = dists[1 - side].get(x)
                if other is not None and d + other < best:
                    best = d + other
                    meet = x
                for y, w in self._upward[x]:
                    nd = d + w
                    if nd < dists[side].get(y, math.inf):
                        dists[side][y] = nd
                        if track:
                            prevs[side][y] = x
                        heapq.heappush(heaps[side], (nd, y))
        return best, meet, prevs

    # ------------------------------------------------------------------
    @property
    def num_shortcuts(self) -> int:
        return len(self._shortcuts)

    def index_size_entries(self) -> int:
        """Upward edges (original + shortcuts) — CH's size metric."""
        return sum(len(edges) for edges in self._upward)

    def __repr__(self) -> str:
        return (
            f"CHIndex(n={self.graph.num_vertices}, "
            f"shortcuts={self.num_shortcuts}, entries={self.index_size_entries()})"
        )


def build_ch(graph: RoadNetwork, hop_limit: int = 5, settle_limit: int = 60) -> CHIndex:
    """Build a contraction-hierarchies index over ``graph``."""
    return CHIndex(graph, hop_limit=hop_limit, settle_limit=settle_limit)
