"""Dijkstra's algorithm — the correctness reference for every index.

Binary-heap implementation over the adjacency-dict graph; supports
single-source trees, early-exit point-to-point queries and path recovery.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import QueryError
from repro.graph.road_network import RoadNetwork

__all__ = [
    "dijkstra_distances",
    "dijkstra_distance",
    "dijkstra_path",
    "DijkstraOracle",
]


def dijkstra_distances(
    graph: RoadNetwork,
    source: int,
    targets: set[int] | None = None,
    cutoff: float = math.inf,
) -> np.ndarray:
    """Single-source shortest distances.

    Parameters
    ----------
    targets:
        Optional early-exit set — the search stops once all are settled.
    cutoff:
        Vertices farther than this are left at ``inf``.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise QueryError(f"unknown source vertex {source}")
    dist = np.full(n, math.inf)
    dist[source] = 0.0
    pending = set(targets) if targets is not None else None
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if pending is not None:
            pending.discard(u)
            if not pending:
                break
        for v, w in graph.neighbor_items(u):
            nd = d + w
            if nd < dist[v] and nd <= cutoff:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def dijkstra_distance(graph: RoadNetwork, source: int, target: int) -> float:
    """Point-to-point shortest distance with early exit."""
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise QueryError(f"unknown vertices ({source}, {target})")
    if source == target:
        return 0.0
    dist = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u == target:
            return d
        if d > dist.get(u, math.inf):
            continue
        for v, w in graph.neighbor_items(u):
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return math.inf


def dijkstra_path(graph: RoadNetwork, source: int, target: int) -> list[int]:
    """A concrete shortest path; empty list if unreachable."""
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise QueryError(f"unknown vertices ({source}, {target})")
    if source == target:
        return [source]
    dist = {source: 0.0}
    prev: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(prev[path[-1]])
            path.reverse()
            return path
        if d > dist.get(u, math.inf):
            continue
        for v, w in graph.neighbor_items(u):
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))
    return []


class DijkstraOracle:
    """Index-free distance oracle (the A*/Dijkstra rows of the paper).

    Exposes the same ``distance``/``path`` interface as the label indexes so
    the FSPQ engine can run the straightforward baselines.
    """

    def __init__(self, graph: RoadNetwork) -> None:
        self.graph = graph

    def distance(self, u: int, v: int) -> float:
        return dijkstra_distance(self.graph, u, v)

    def path(self, u: int, v: int) -> list[int]:
        return dijkstra_path(self.graph, u, v)
