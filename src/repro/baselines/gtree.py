"""TD-G-tree baseline: hierarchical graph-partition index.

G-tree (Zhong et al.) recursively partitions the road network and stores
per-partition distance matrices; TD-G-tree (Wang et al.) extends it to
time-dependent networks.  In our FRN the spatial weights are per-slice
constants (time-dependence enters through the flow series handled by the
query engine), so the index keeps the G-tree geometry and the TD variant's
update path:

* leaves of at most ``leaf_size`` vertices from recursive bisection
  (:mod:`repro.baselines.partition`);
* per-leaf matrices: within-leaf distances from every *border* (vertex with
  an edge leaving the leaf) to every leaf vertex;
* a global **border graph** whose edges are (a) within-leaf border-to-border
  distances and (b) the original cross-leaf edges.  Distance queries run a
  multi-source Dijkstra over this small graph between the source leaf's and
  the target leaf's borders — the "tree traversal" that makes G-tree
  queries slower than H2H's label lookups, exactly as the paper observes.

Exactness: any s-t path either stays inside one leaf (covered by the
intra-leaf search) or decomposes into within-leaf segments between borders
(each at least the corresponding border-graph edge) and cross-leaf edges,
so the border-graph relaxation neither over- nor under-estimates.

Updates (:meth:`TDGTree.update_edge_weight`) recompute the affected leaf's
matrices and border edges; the number of rewritten matrix entries is the
"updated records" metric the paper counts for TD-G-tree in Fig. 9.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import EdgeNotFoundError, GraphError, IndexStateError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import require_connected
from repro.baselines.partition import recursive_bisection

__all__ = ["TDGTree", "build_gtree"]


@dataclass
class _Leaf:
    """One partition leaf with its border distance rows."""

    vertices: list[int]
    vset: set[int]
    borders: list[int]
    # dist[border][vertex] = within-leaf shortest distance
    dist: dict[int, dict[int, float]] = field(default_factory=dict)


class TDGTree:
    """Partition-tree distance index with update support.

    Parameters
    ----------
    graph:
        Connected road network (mutated by :meth:`update_edge_weight`).
    leaf_size:
        Maximum vertices per leaf (paper-style fanout is controlled by the
        bisection depth this implies).
    """

    def __init__(self, graph: RoadNetwork, leaf_size: int = 64) -> None:
        if graph.num_vertices == 0:
            raise IndexStateError("cannot index an empty graph")
        require_connected(graph, context="G-tree construction")
        self.graph = graph
        self.leaf_size = int(leaf_size)
        parts = recursive_bisection(graph, leaf_size)
        self._leaf_of = np.full(graph.num_vertices, -1, dtype=np.int64)
        self._leaves: list[_Leaf] = []
        for leaf_id, vertices in enumerate(parts):
            vset = set(vertices)
            borders = [
                v
                for v in vertices
                if any(nbr not in vset for nbr in graph.neighbors(v))
            ]
            self._leaves.append(_Leaf(vertices=vertices, vset=vset, borders=borders))
            for v in vertices:
                self._leaf_of[v] = leaf_id
        self._border_graph: dict[int, dict[int, float]] = {}
        for leaf_id in range(len(self._leaves)):
            self._rebuild_leaf(leaf_id)
        self._rebuild_cross_edges()

    # ------------------------------------------------------------------
    # construction / maintenance
    # ------------------------------------------------------------------
    def _leaf_dijkstra(self, leaf: _Leaf, source: int) -> dict[int, float]:
        """Dijkstra restricted to one leaf's induced subgraph."""
        dist = {source: 0.0}
        heap = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, math.inf):
                continue
            for v, w in self.graph.neighbor_items(u):
                if v not in leaf.vset:
                    continue
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def _leaf_path(self, leaf: _Leaf, source: int, target: int) -> list[int]:
        """Concrete within-leaf shortest path (``[]`` if unreachable)."""
        if source == target:
            return [source]
        dist = {source: 0.0}
        prev: dict[int, int] = {}
        heap = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if u == target:
                path = [target]
                while path[-1] != source:
                    path.append(prev[path[-1]])
                path.reverse()
                return path
            if d > dist.get(u, math.inf):
                continue
            for v, w in self.graph.neighbor_items(u):
                if v not in leaf.vset:
                    continue
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        return []

    def _rebuild_leaf(self, leaf_id: int) -> int:
        """Recompute one leaf's matrices and border edges; returns entries."""
        leaf = self._leaves[leaf_id]
        leaf.dist = {b: self._leaf_dijkstra(leaf, b) for b in leaf.borders}
        entries = sum(len(row) for row in leaf.dist.values())
        # within-leaf border-to-border edges of the border graph
        for i, a in enumerate(leaf.borders):
            row = leaf.dist[a]
            for b in leaf.borders[i + 1:]:
                d = row.get(b, math.inf)
                if math.isfinite(d):
                    self._border_edge(a, b, d)
                    entries += 1
        return entries

    def _border_edge(self, a: int, b: int, weight: float) -> None:
        self._border_graph.setdefault(a, {})[b] = weight
        self._border_graph.setdefault(b, {})[a] = weight

    def _rebuild_cross_edges(self) -> None:
        for u, v, w in self.graph.edges():
            if self._leaf_of[u] != self._leaf_of[v]:
                self._border_edge(u, v, w)

    def update_edge_weight(self, u: int, v: int, new_weight: float) -> int:
        """Apply a weight change and repair the index.

        Returns the number of updated records (matrix entries + border
        edges) — the Fig. 9 metric for TD-G-tree.
        """
        if new_weight <= 0:
            raise GraphError(f"edge weight must be positive, got {new_weight}")
        if not self.graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self.graph.set_weight(u, v, new_weight)
        leaf_u, leaf_v = int(self._leaf_of[u]), int(self._leaf_of[v])
        if leaf_u != leaf_v:
            self._border_edge(u, v, new_weight)
            return 1
        return self._rebuild_leaf(leaf_u)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Exact shortest distance via leaf matrices + border-graph search."""
        n = self.graph.num_vertices
        if not (0 <= s < n and 0 <= t < n):
            raise QueryError(f"unknown vertices ({s}, {t})")
        if s == t:
            return 0.0
        leaf_s = self._leaves[int(self._leaf_of[s])]
        leaf_t = self._leaves[int(self._leaf_of[t])]

        best = math.inf
        if leaf_s is leaf_t:
            best = self._leaf_dijkstra(leaf_s, s).get(t, math.inf)

        # seeds: within-leaf distance from s to each border of its leaf
        seeds: dict[int, float] = {}
        for border in leaf_s.borders:
            d = leaf_s.dist[border].get(s, math.inf)
            if math.isfinite(d):
                seeds[border] = min(seeds.get(border, math.inf), d)
        if not seeds:
            return best
        target_borders = {
            border: leaf_t.dist[border].get(t, math.inf)
            for border in leaf_t.borders
        }

        dist = dict(seeds)
        heap = [(d, b) for b, d in seeds.items()]
        heapq.heapify(heap)
        pending = {b for b, d in target_borders.items() if math.isfinite(d)}
        while heap and pending:
            d, b = heapq.heappop(heap)
            if d > dist.get(b, math.inf):
                continue
            if d >= best:
                break  # every remaining border route is >= the incumbent
            pending.discard(b)
            for nbr, w in self._border_graph.get(b, {}).items():
                nd = d + w
                if nd < dist.get(nbr, math.inf):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        for border, tail in target_borders.items():
            d = dist.get(border, math.inf)
            if math.isfinite(d) and math.isfinite(tail):
                best = min(best, d + tail)
        return best

    def path(self, s: int, t: int) -> list[int]:
        """A concrete shortest path (leaf segments + border-graph spine)."""
        n = self.graph.num_vertices
        if not (0 <= s < n and 0 <= t < n):
            raise QueryError(f"unknown vertices ({s}, {t})")
        if s == t:
            return [s]
        leaf_s = self._leaves[int(self._leaf_of[s])]
        leaf_t = self._leaves[int(self._leaf_of[t])]

        best_intra = math.inf
        if leaf_s is leaf_t:
            best_intra = self._leaf_dijkstra(leaf_s, s).get(t, math.inf)

        # multi-source border-graph Dijkstra with parent tracking
        seeds = {
            b: leaf_s.dist[b].get(s, math.inf)
            for b in leaf_s.borders
            if math.isfinite(leaf_s.dist[b].get(s, math.inf))
        }
        dist = dict(seeds)
        prev: dict[int, int] = {}
        heap = [(d, b) for b, d in seeds.items()]
        heapq.heapify(heap)
        while heap:
            d, b = heapq.heappop(heap)
            if d > dist.get(b, math.inf):
                continue
            for nbr, w in self._border_graph.get(b, {}).items():
                nd = d + w
                if nd < dist.get(nbr, math.inf):
                    dist[nbr] = nd
                    prev[nbr] = b
                    heapq.heappush(heap, (nd, nbr))
        best_border = math.inf
        best_exit = -1
        for border in leaf_t.borders:
            tail = leaf_t.dist[border].get(t, math.inf)
            d = dist.get(border, math.inf)
            if d + tail < best_border:
                best_border = d + tail
                best_exit = border

        if best_intra <= best_border:
            return self._leaf_path(leaf_s, s, t)

        # reconstruct the border spine, then expand each border edge
        spine = [best_exit]
        while spine[-1] in prev:
            spine.append(prev[spine[-1]])
        spine.reverse()
        entry = spine[0]
        path = self._leaf_path(leaf_s, s, entry)
        for a, b in zip(spine, spine[1:]):
            path.extend(self._expand_border_edge(a, b)[1:])
        path.extend(self._leaf_path(leaf_t, best_exit, t)[1:])
        return path

    def _expand_border_edge(self, a: int, b: int) -> list[int]:
        """Expand one border-graph edge into original graph vertices."""
        weight = self._border_graph[a][b]
        if self.graph.has_edge(a, b) and self.graph.weight(a, b) <= weight:
            return [a, b]
        leaf = self._leaves[int(self._leaf_of[a])]
        return self._leaf_path(leaf, a, b)

    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    def index_size_entries(self) -> int:
        """Matrix entries plus border-graph edges."""
        matrix_entries = sum(
            sum(len(row) for row in leaf.dist.values()) for leaf in self._leaves
        )
        border_edges = sum(len(nbrs) for nbrs in self._border_graph.values()) // 2
        return matrix_entries + border_edges

    def __repr__(self) -> str:
        return (
            f"TDGTree(n={self.graph.num_vertices}, leaves={self.num_leaves}, "
            f"entries={self.index_size_entries()})"
        )


def build_gtree(graph: RoadNetwork, leaf_size: int = 64) -> TDGTree:
    """Build a TD-G-tree index over ``graph``."""
    return TDGTree(graph, leaf_size=leaf_size)
