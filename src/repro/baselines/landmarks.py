"""ALT landmarks: triangle-inequality lower bounds for goal-directed search.

The paper's related work cites REAL (Goldberg et al.), which combines A*
with reach/landmark lower bounds.  This module implements the landmark
half: pick a small set of well-spread landmarks, precompute single-source
distances from each, and bound any remaining distance by

.. math::

    h(v) = \\max_L |d(L, t) - d(L, v)|

which is admissible and consistent on undirected graphs.  The resulting
:class:`ALTOracle` is a middle ground between plain A* (no preprocessing,
weak guidance) and the label indexes (heavy preprocessing, exact
guidance) — a useful extra point on the Fig. 6 trade-off curve.

Landmark selection uses the standard *farthest-point* heuristic: start
from an arbitrary vertex, repeatedly add the vertex maximising the minimum
distance to the chosen set.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.dijkstra import dijkstra_distances
from repro.errors import IndexBuildError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import require_connected
from repro.paths.astar_search import AdmissibleHeuristic, astar_path

__all__ = ["LandmarkHeuristic", "ALTOracle", "select_landmarks"]


def select_landmarks(
    graph: RoadNetwork,
    count: int,
    seed: int = 0,
) -> list[int]:
    """Farthest-point landmark selection (returns ``count`` vertex ids)."""
    n = graph.num_vertices
    if not 1 <= count <= n:
        raise IndexBuildError(
            f"landmark count must be in [1, {n}], got {count}"
        )
    rng = np.random.default_rng(seed)
    start = int(rng.integers(n))
    # the farthest vertex from a random start makes a better first landmark
    first = int(np.argmax(dijkstra_distances(graph, start)))
    landmarks = [first]
    min_dist = dijkstra_distances(graph, first)
    while len(landmarks) < count:
        candidate = int(np.argmax(min_dist))
        if min_dist[candidate] <= 0:
            break  # graph smaller than requested spread
        landmarks.append(candidate)
        min_dist = np.minimum(min_dist, dijkstra_distances(graph, candidate))
    return landmarks


class LandmarkHeuristic(AdmissibleHeuristic):
    """ALT lower bound toward a fixed target."""

    def __init__(self, tables: np.ndarray, target: int) -> None:
        # tables: (num_landmarks, n) distance matrix
        self._tables = tables
        self._to_target = tables[:, target]

    def estimate(self, vertex: int) -> float:
        return float(np.abs(self._to_target - self._tables[:, vertex]).max())


class ALTOracle:
    """A*-with-landmarks distance oracle (REAL-style baseline).

    Parameters
    ----------
    graph:
        Connected road network.
    num_landmarks:
        Landmarks to precompute (paper-era implementations use 8-32).
    seed:
        Selection seed.
    """

    def __init__(
        self,
        graph: RoadNetwork,
        num_landmarks: int = 8,
        seed: int = 0,
    ) -> None:
        require_connected(graph, context="ALT preprocessing")
        self.graph = graph
        self.landmarks = select_landmarks(
            graph, min(num_landmarks, graph.num_vertices), seed=seed
        )
        self._tables = np.vstack(
            [dijkstra_distances(graph, lm) for lm in self.landmarks]
        )

    def heuristic(self, target: int) -> LandmarkHeuristic:
        """The ALT heuristic toward ``target`` (reusable across searches)."""
        n = self.graph.num_vertices
        if not 0 <= target < n:
            raise QueryError(f"unknown target vertex {target}")
        return LandmarkHeuristic(self._tables, target)

    def distance(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        _, dist = astar_path(self.graph, u, v, self.heuristic(v))
        return dist

    def path(self, u: int, v: int) -> list[int]:
        if u == v:
            return [u]
        path, _ = astar_path(self.graph, u, v, self.heuristic(v))
        return path

    def index_size_entries(self) -> int:
        """Stored landmark-table entries."""
        return int(self._tables.size)

    def __repr__(self) -> str:
        return (
            f"ALTOracle(n={self.graph.num_vertices}, "
            f"landmarks={len(self.landmarks)})"
        )
