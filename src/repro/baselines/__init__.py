"""Baseline shortest-path methods the paper compares against."""

from repro.baselines.astar import AStarOracle
from repro.baselines.bidirectional import (
    BidirectionalDijkstra,
    bidirectional_distance,
)
from repro.baselines.ch import CHIndex, build_ch
from repro.baselines.dijkstra import (
    DijkstraOracle,
    dijkstra_distance,
    dijkstra_distances,
    dijkstra_path,
)
from repro.baselines.gtree import TDGTree, build_gtree
from repro.baselines.landmarks import ALTOracle, select_landmarks
from repro.baselines.pll import PLLIndex, build_pll
from repro.baselines.partition import bisect, recursive_bisection

__all__ = [
    "ALTOracle",
    "AStarOracle",
    "BidirectionalDijkstra",
    "CHIndex",
    "PLLIndex",
    "DijkstraOracle",
    "TDGTree",
    "bidirectional_distance",
    "bisect",
    "build_ch",
    "build_gtree",
    "build_pll",
    "select_landmarks",
    "dijkstra_distance",
    "dijkstra_distances",
    "dijkstra_path",
    "recursive_bisection",
]
