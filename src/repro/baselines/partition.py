"""Graph bisection for the G-tree baseline.

TD-G-tree builds its hierarchy by recursively partitioning the road network
(the original papers use METIS).  We implement a self-contained bisection
that works well on road-like graphs:

1. **seeding** — BFS from an arbitrary vertex to its hop-farthest vertex
   ``a``, then from ``a`` to its farthest vertex ``b`` (a classic diameter
   approximation);
2. **balanced region growing** — alternate BFS layers from ``a`` and ``b``
   until every vertex is claimed, keeping the two sides within the balance
   tolerance;
3. **boundary refinement** — greedy Kernighan-Lin-style single-vertex moves
   across the cut while they reduce the number of cut edges and respect the
   balance constraint.
"""

from __future__ import annotations

from collections import deque

from repro.errors import PartitionError
from repro.graph.road_network import RoadNetwork

__all__ = ["bisect", "recursive_bisection"]


def _bfs_farthest(graph: RoadNetwork, start: int, allowed: set[int]) -> int:
    """Hop-farthest vertex from ``start`` inside ``allowed``."""
    seen = {start}
    queue = deque([start])
    last = start
    while queue:
        u = queue.popleft()
        last = u
        for v in graph.neighbors(u):
            if v in allowed and v not in seen:
                seen.add(v)
                queue.append(v)
    return last


def _grow_regions(
    graph: RoadNetwork,
    vertices: list[int],
    seed_a: int,
    seed_b: int,
    max_side: int,
) -> dict[int, int]:
    """Alternating BFS growth; returns ``vertex -> side`` (0 or 1)."""
    allowed = set(vertices)
    side: dict[int, int] = {seed_a: 0, seed_b: 1}
    queues = (deque([seed_a]), deque([seed_b]))
    counts = [1, 1]
    while queues[0] or queues[1]:
        # expand the currently smaller side to stay balanced
        pick = 0 if (counts[0] <= counts[1] and queues[0]) or not queues[1] else 1
        queue = queues[pick]
        if not queue:
            pick = 1 - pick
            queue = queues[pick]
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in allowed and v not in side and counts[pick] < max_side:
                side[v] = pick
                counts[pick] += 1
                queue.append(v)
    # vertices unreachable under the cap: dump into the smaller side
    for v in vertices:
        if v not in side:
            pick = 0 if counts[0] <= counts[1] else 1
            side[v] = pick
            counts[pick] += 1
    return side


def _refine(
    graph: RoadNetwork,
    side: dict[int, int],
    max_side: int,
    rounds: int = 4,
) -> None:
    """Greedy boundary moves that strictly reduce the cut size."""
    for _ in range(rounds):
        counts = [0, 0]
        for s in side.values():
            counts[s] += 1
        moved = False
        for v, s in list(side.items()):
            internal = external = 0
            for nbr in graph.neighbors(v):
                nbr_side = side.get(nbr)
                if nbr_side is None:
                    continue
                if nbr_side == s:
                    internal += 1
                else:
                    external += 1
            if external > internal and counts[1 - s] < max_side and counts[s] > 1:
                side[v] = 1 - s
                counts[s] -= 1
                counts[1 - s] += 1
                moved = True
        if not moved:
            return


def bisect(
    graph: RoadNetwork,
    vertices: list[int],
    balance: float = 0.6,
) -> tuple[list[int], list[int]]:
    """Split ``vertices`` into two connected-ish halves with a small cut.

    ``balance`` caps either side at ``balance * len(vertices)``.
    """
    if len(vertices) < 2:
        raise PartitionError(f"cannot bisect {len(vertices)} vertices")
    if not 0.5 < balance < 1.0:
        raise PartitionError(f"balance must be in (0.5, 1), got {balance}")
    allowed = set(vertices)
    start = vertices[0]
    seed_a = _bfs_farthest(graph, start, allowed)
    seed_b = _bfs_farthest(graph, seed_a, allowed)
    if seed_a == seed_b:
        half = len(vertices) // 2
        return vertices[:half], vertices[half:]
    max_side = max(1, int(balance * len(vertices)))
    side = _grow_regions(graph, vertices, seed_a, seed_b, max_side)
    _refine(graph, side, max_side)
    left = sorted(v for v, s in side.items() if s == 0)
    right = sorted(v for v, s in side.items() if s == 1)
    if not left or not right:
        half = len(vertices) // 2
        return vertices[:half], vertices[half:]
    return left, right


def recursive_bisection(
    graph: RoadNetwork,
    leaf_size: int,
) -> list[list[int]]:
    """Partition the whole graph into leaves of at most ``leaf_size``."""
    if leaf_size < 1:
        raise PartitionError(f"leaf_size must be >= 1, got {leaf_size}")
    leaves: list[list[int]] = []
    stack: list[list[int]] = [sorted(graph.vertices())]
    while stack:
        part = stack.pop()
        if len(part) <= leaf_size:
            leaves.append(part)
            continue
        left, right = bisect(graph, part)
        stack.append(left)
        stack.append(right)
    return leaves
