"""Bidirectional Dijkstra — the classic index-free speedup.

Searches forward from the source and backward from the target
simultaneously, stopping when the sum of the two frontiers' minima can no
longer improve the best meeting point.  On road networks this roughly
halves the settled vertices versus unidirectional Dijkstra, making it the
fair "no preprocessing, but competent" baseline between A* and the
indexes.
"""

from __future__ import annotations

import heapq
import math

from repro.errors import QueryError
from repro.graph.road_network import RoadNetwork

__all__ = ["BidirectionalDijkstra", "bidirectional_distance"]


def bidirectional_distance(
    graph: RoadNetwork,
    source: int,
    target: int,
) -> tuple[float, list[int]]:
    """Distance and a concrete shortest path (``(inf, [])`` if separate)."""
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise QueryError(f"unknown vertices ({source}, {target})")
    if source == target:
        return 0.0, [source]

    dists = ({source: 0.0}, {target: 0.0})
    prevs: tuple[dict[int, int], dict[int, int]] = ({}, {})
    heaps = ([(0.0, source)], [(0.0, target)])
    settled: tuple[set[int], set[int]] = (set(), set())
    best = math.inf
    meet = -1

    while heaps[0] and heaps[1]:
        # the standard termination test: once top_f + top_b >= best, no
        # undiscovered meeting point can improve
        if heaps[0][0][0] + heaps[1][0][0] >= best:
            break
        side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        d, u = heapq.heappop(heaps[side])
        if d > dists[side].get(u, math.inf):
            continue
        settled[side].add(u)
        for v, w in graph.neighbor_items(u):
            nd = d + w
            if nd < dists[side].get(v, math.inf):
                dists[side][v] = nd
                prevs[side][v] = u
                heapq.heappush(heaps[side], (nd, v))
            other = dists[1 - side].get(v)
            if other is not None:
                candidate = dists[side][v] + other
                if candidate < best:
                    best = candidate
                    meet = v

    if not math.isfinite(best):
        return math.inf, []
    forward = [meet]
    while forward[-1] != source:
        forward.append(prevs[0][forward[-1]])
    forward.reverse()
    node = meet
    while node != target:
        node = prevs[1][node]
        forward.append(node)
    return best, forward


class BidirectionalDijkstra:
    """Oracle wrapper with the common ``distance``/``path`` interface."""

    def __init__(self, graph: RoadNetwork) -> None:
        self.graph = graph

    def distance(self, u: int, v: int) -> float:
        dist, _ = bidirectional_distance(self.graph, u, v)
        return dist

    def path(self, u: int, v: int) -> list[int]:
        _, path = bidirectional_distance(self.graph, u, v)
        return path
