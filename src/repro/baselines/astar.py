"""A* baseline (index-free heuristic search, paper's weakest comparator).

Runs a fresh A* search per distance query using the scaled euclidean
heuristic when coordinates exist (falling back to Dijkstra otherwise).  No
index means zero construction time but the slowest queries — the paper's
Fig. 6 bottom line.
"""

from __future__ import annotations

from repro.graph.road_network import RoadNetwork
from repro.paths.astar_search import (
    EuclideanHeuristic,
    ZeroHeuristic,
    astar_path,
)

__all__ = ["AStarOracle"]


class AStarOracle:
    """Per-query A* search exposing the common oracle interface."""

    def __init__(self, graph: RoadNetwork) -> None:
        self.graph = graph
        self._has_coords = len(graph.coordinates) == graph.num_vertices

    def _heuristic(self, target: int):
        if self._has_coords:
            return EuclideanHeuristic(self.graph, target)
        return ZeroHeuristic()

    def distance(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        _, dist = astar_path(self.graph, u, v, self._heuristic(v))
        return dist

    def path(self, u: int, v: int) -> list[int]:
        if u == v:
            return [u]
        path, _ = astar_path(self.graph, u, v, self._heuristic(v))
        return path
