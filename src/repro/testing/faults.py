"""Deterministic fault injection for chaos-testing the FAHL stack.

Three fault families, all seedable and reproducible:

* **Maintenance faults** — :class:`FaultInjector` raises a chosen exception
  at a named checkpoint inside ILU/ISU/GSU (see
  :data:`repro.core.maintenance.FAULT_POINTS`), optionally only on the
  n-th crossing.  Used as a context manager so the hook can never leak
  into unrelated tests.
* **Corrupt update streams** — :func:`corrupt_updates` takes a clean
  ``{vertex: flow}`` stream and deterministically replaces a fraction of
  entries with NaN/inf/negative flows or unknown vertices, returning both
  the dirty stream and the set of corrupted keys (so a test can assert
  exactly which updates the serving layer quarantined).
* **Worker faults** — :class:`WorkerFault` kills (``os._exit``) or hangs
  (sleep) a fork-pool worker when it picks up the chunk containing a chosen
  query position.  Installed pre-fork, the flag propagates to children via
  the copy-on-write fork; the parent process is never harmed.
* **Simulated crashes** — :class:`CrashInjector` raises
  :class:`~repro.durability.SimulatedCrash` at a named durability
  checkpoint (see :data:`repro.durability.CRASH_POINTS`): mid WAL append,
  before an fsync, between checkpoint files, at the rotation.  The
  exception derives from ``BaseException``, so the serving layer's
  ``except Exception`` recovery paths cannot swallow it — the closest
  in-process model of SIGKILL that still lets the test keep the
  directory and run :func:`repro.durability.recover` on it.

Nothing in this module is imported by production code paths; the hooks it
installs are module-level test seams that default to ``None``.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core import batch as _batch
from repro.core import maintenance as _maintenance
from repro.durability import crashpoints as _crashpoints

__all__ = [
    "CrashInjector",
    "FaultInjector",
    "FaultSpec",
    "WorkerFault",
    "corrupt_updates",
    "list_crash_points",
    "list_fault_points",
]


def list_fault_points() -> tuple[str, ...]:
    """All instrumented maintenance checkpoint names, in execution order."""
    return _maintenance.FAULT_POINTS


def list_crash_points() -> tuple[str, ...]:
    """All instrumented durability crash points, in execution order."""
    return _crashpoints.CRASH_POINTS


# ----------------------------------------------------------------------
# maintenance faults
# ----------------------------------------------------------------------
@dataclass
class FaultSpec:
    """One planned fault: raise ``exception`` at checkpoint ``point``.

    ``after`` skips that many crossings first (0 = fire on the first one);
    ``times`` bounds how often the fault fires (-1 = every crossing).
    """

    point: str
    exception: type[BaseException] = RuntimeError
    after: int = 0
    times: int = 1
    crossings: int = 0
    fires: int = 0

    def should_fire(self) -> bool:
        self.crossings += 1
        if self.crossings <= self.after:
            return False
        if self.times >= 0 and self.fires >= self.times:
            return False
        self.fires += 1
        return True


class FaultInjector:
    """Context manager that arms maintenance checkpoints with faults.

    >>> with FaultInjector() as inj:
    ...     inj.fail_at("isu:window-eliminated")
    ...     with pytest.raises(MaintenanceError):
    ...         apply_flow_update(index, v, flow)

    Unknown point names are rejected eagerly, so a typo can't silently arm
    nothing.  The injector records every checkpoint crossing in
    :attr:`trace`, which chaos tests use to assert coverage.
    """

    def __init__(self) -> None:
        self.specs: list[FaultSpec] = []
        self.trace: list[str] = []
        self._armed = False

    def fail_at(
        self,
        point: str,
        exception: type[BaseException] = RuntimeError,
        after: int = 0,
        times: int = 1,
    ) -> "FaultInjector":
        if point not in _maintenance.FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; see list_fault_points()"
            )
        self.specs.append(
            FaultSpec(point=point, exception=exception, after=after, times=times)
        )
        return self

    # -- hook plumbing --------------------------------------------------
    def _hook(self, name: str) -> None:
        self.trace.append(name)
        for spec in self.specs:
            if spec.point == name and spec.should_fire():
                raise spec.exception(f"injected fault at {name}")

    def __enter__(self) -> "FaultInjector":
        _maintenance.set_fault_hook(self._hook)
        self._armed = True
        return self

    def __exit__(self, *exc_info) -> None:
        _maintenance.set_fault_hook(None)
        self._armed = False


# ----------------------------------------------------------------------
# simulated process crashes at durability boundaries
# ----------------------------------------------------------------------
class CrashInjector:
    """Context manager that "kills the process" at a durability boundary.

    >>> with CrashInjector() as inj:
    ...     inj.crash_at("checkpoint:manifest", after=1)
    ...     with pytest.raises(SimulatedCrash):
    ...         engine.submit(update)
    ... # the durability directory now looks exactly like a kill -9 left it
    >>> recovered = recover(root, frn)

    Reuses :class:`FaultSpec` for the crossing arithmetic (``after`` /
    ``times``), raises :class:`~repro.durability.SimulatedCrash` (a
    ``BaseException``), and records every crossing in :attr:`trace` so the
    crash matrix can assert each instrumented point was actually reached.
    """

    def __init__(self) -> None:
        self.specs: list[FaultSpec] = []
        self.trace: list[str] = []

    def crash_at(
        self, point: str, after: int = 0, times: int = 1
    ) -> "CrashInjector":
        if point not in _crashpoints.CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {point!r}; see list_crash_points()"
            )
        self.specs.append(
            FaultSpec(
                point=point,
                exception=_crashpoints.SimulatedCrash,
                after=after,
                times=times,
            )
        )
        return self

    def _hook(self, name: str) -> None:
        self.trace.append(name)
        for spec in self.specs:
            if spec.point == name and spec.should_fire():
                raise spec.exception(f"simulated crash at {name}")

    def __enter__(self) -> "CrashInjector":
        _crashpoints.set_crash_hook(self._hook)
        return self

    def __exit__(self, *exc_info) -> None:
        _crashpoints.set_crash_hook(None)


# ----------------------------------------------------------------------
# corrupt update streams
# ----------------------------------------------------------------------
_CORRUPTION_KINDS = ("nan", "inf", "negative", "unknown-vertex")


def corrupt_updates(
    updates: dict[int, float],
    num_vertices: int,
    rate: float = 0.3,
    seed: int = 0,
) -> tuple[dict[int, float], dict[int, str]]:
    """Deterministically corrupt a fraction of a flow-update stream.

    Returns ``(dirty, corrupted)`` where ``dirty`` is a new update dict and
    ``corrupted`` maps each poisoned key to the corruption kind applied
    (``"nan"``, ``"inf"``, ``"negative"`` or ``"unknown-vertex"``; the
    latter re-keys the update to a vertex id ``>= num_vertices``).
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rng = np.random.default_rng(seed)
    dirty: dict[int, float] = {}
    corrupted: dict[int, str] = {}
    for vertex, flow in sorted(updates.items()):
        if rng.random() >= rate:
            dirty[vertex] = flow
            continue
        kind = _CORRUPTION_KINDS[int(rng.integers(len(_CORRUPTION_KINDS)))]
        if kind == "nan":
            dirty[vertex] = math.nan
        elif kind == "inf":
            dirty[vertex] = math.inf
        elif kind == "negative":
            dirty[vertex] = -abs(flow) - 1.0
        else:  # unknown-vertex
            dirty[num_vertices + vertex] = flow
        corrupted[vertex] = kind
    return dirty, corrupted


# ----------------------------------------------------------------------
# fork-pool worker faults
# ----------------------------------------------------------------------
@dataclass
class WorkerFault:
    """Kill or hang the pool worker that picks up a chosen query position.

    ``kind="kill"`` exits the child with ``os._exit`` (no cleanup — the
    closest pure-Python stand-in for SIGKILL); ``kind="hang"`` sleeps for
    ``hang_seconds`` so per-chunk timeouts can be exercised.  The fault
    fires in at most one worker: the one whose chunk contains ``position``.
    """

    position: int
    kind: str = "kill"
    hang_seconds: float = 30.0
    exit_code: int = 17

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "hang"):
            raise ValueError(f"kind must be 'kill' or 'hang', got {self.kind!r}")

    def __call__(self, positions: list[int]) -> None:
        if self.position not in positions:
            return
        if self.kind == "kill":
            os._exit(self.exit_code)
        time.sleep(self.hang_seconds)

    def __enter__(self) -> "WorkerFault":
        _batch.set_worker_fault_hook(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _batch.set_worker_fault_hook(None)
