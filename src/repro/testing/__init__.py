"""Test-support utilities: deterministic fault injection for chaos testing."""

from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    WorkerFault,
    corrupt_updates,
    list_fault_points,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "WorkerFault",
    "corrupt_updates",
    "list_fault_points",
]
