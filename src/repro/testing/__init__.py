"""Test-support utilities: deterministic fault injection for chaos testing."""

from repro.testing.faults import (
    CrashInjector,
    FaultInjector,
    FaultSpec,
    WorkerFault,
    corrupt_updates,
    list_crash_points,
    list_fault_points,
)

__all__ = [
    "CrashInjector",
    "FaultInjector",
    "FaultSpec",
    "WorkerFault",
    "corrupt_updates",
    "list_crash_points",
    "list_fault_points",
]
