"""FAHL reproduction: flow-aware shortest path querying in road networks.

Public API (re-exported here):

* :class:`RoadNetwork` / :class:`FlowAwareRoadNetwork` — the graph and FRN
  model (paper Def. 1);
* :class:`FAHLIndex` — the flow-aware hierarchical labeling index
  (Section III), with :class:`H2HIndex` as the degree-ordered baseline;
* :class:`FlowAwareEngine` / :class:`FSPQuery` — FSPQ evaluation with the
  FPSPS algorithm and pruning bounds (Section V);
* :func:`apply_weight_update` (ILU) and :func:`apply_flow_update`
  (ISU/GSU) — transactional index maintenance (Section IV) with rollback;
* :class:`ResilientEngine` — the fault-tolerant serving layer (admission
  control, dead-letter quarantine, degraded-mode fallback; docs/RESILIENCE.md);
* :class:`ShardedGateway` — the horizontally sharded serving gateway with
  boundary-table cross-shard combines and the flow-interval-aware result
  cache (docs/API.md);
* :class:`repro.api.Engine` — the protocol the three serving classes share,
  with :func:`knn`, :func:`constrained` and :func:`skyline` as harmonised,
  :class:`FSPQuery`-accepting extension-query front doors;
* :class:`AsyncGateway` / :class:`repro.api.AsyncEngine` /
  :func:`repro.api.to_async` — the asyncio micro-batching front door and
  the async-first protocol every tier adapts to (docs/API.md,
  "Async serving");
* generators, predictors and workloads for running the paper's experiments.

See README.md for a quickstart, DESIGN.md for the system inventory and
docs/API.md for the stable public surface + deprecation policy.
"""

from repro.api import (
    AsyncEngine,
    Engine,
    as_distance,
    as_result,
    constrained,
    knn,
    skyline,
    to_async,
)
from repro.core import (
    BatchReport,
    FAHLIndex,
    FlowAwareEngine,
    FSPQuery,
    FSPResult,
    apply_flow_update,
    apply_flow_updates,
    apply_weight_update,
    apply_weight_updates,
    batch_query,
    build_fahl,
)
from repro.core.constrained import QueryConstraints
from repro.errors import (
    AdmissionError,
    BackpressureError,
    MaintenanceError,
    ReproError,
)
from repro.scale import GatewayStatus, ShardedGateway
from repro.serving import (
    AsyncGateway,
    FlowUpdate,
    ResilientEngine,
    WeightUpdate,
    verify_index,
)
from repro.flow import (
    FlowSeries,
    SeasonalNaivePredictor,
    TrainablePredictor,
    generate_flow_series,
    synthesize_lane_counts,
)
from repro.graph import (
    FlowAwareRoadNetwork,
    RoadNetwork,
    grid_network,
    load_dimacs,
    random_road_network,
    ring_radial_network,
)
from repro.labeling import H2HIndex, build_h2h

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "AsyncEngine",
    "AsyncGateway",
    "BackpressureError",
    "BatchReport",
    "Engine",
    "FAHLIndex",
    "FSPQuery",
    "FSPResult",
    "FlowAwareEngine",
    "FlowAwareRoadNetwork",
    "FlowSeries",
    "FlowUpdate",
    "GatewayStatus",
    "H2HIndex",
    "MaintenanceError",
    "QueryConstraints",
    "ReproError",
    "ResilientEngine",
    "RoadNetwork",
    "ShardedGateway",
    "WeightUpdate",
    "SeasonalNaivePredictor",
    "TrainablePredictor",
    "apply_flow_update",
    "apply_flow_updates",
    "apply_weight_update",
    "apply_weight_updates",
    "as_distance",
    "as_result",
    "batch_query",
    "build_fahl",
    "build_h2h",
    "constrained",
    "knn",
    "skyline",
    "to_async",
    "verify_index",
    "generate_flow_series",
    "grid_network",
    "load_dimacs",
    "random_road_network",
    "ring_radial_network",
    "synthesize_lane_counts",
    "__version__",
]
