"""Synthetic spatio-temporal traffic-flow process.

The paper obtains traffic flows from real trajectory data (T-drive) and a
pre-trained PDFormer model.  Neither is available offline, so we simulate a
process with the properties the paper relies on:

* **diurnal shape** — a double-peak (morning/evening rush) daily profile;
* **spatial correlation** — flow diffuses between adjacent vertices
  ("vehicles in one vertex can reach any other connected vertices"), so
  neighbouring vertices have correlated flows;
* **heterogeneous magnitude** — high-degree central vertices carry more flow;
* **noise** — day-to-day stochastic variation.

The output is a :class:`~repro.flow.series.FlowSeries` covering a configurable
number of days at a configurable interval (paper default: 7 days x 60 min).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FlowError
from repro.flow.series import FlowSeries
from repro.graph.road_network import RoadNetwork

__all__ = ["generate_flow_series", "diurnal_profile"]

MINUTES_PER_DAY = 24 * 60


def diurnal_profile(slices_per_day: int) -> np.ndarray:
    """Normalised daily flow profile with morning and evening peaks.

    The profile is a mixture of two Gaussians centred at 8:30 and 18:00 over
    a small base level, scaled to mean 1 so it only shapes, not scales, the
    flow magnitude.
    """
    if slices_per_day <= 0:
        raise FlowError(f"slices_per_day must be positive, got {slices_per_day}")
    hours = np.arange(slices_per_day) * (24.0 / slices_per_day)
    morning = np.exp(-0.5 * ((hours - 8.5) / 1.5) ** 2)
    evening = np.exp(-0.5 * ((hours - 18.0) / 2.0) ** 2)
    profile = 0.25 + 1.1 * morning + 0.9 * evening
    return profile / profile.mean()


def _spatial_base(graph: RoadNetwork, rng: np.random.Generator, rounds: int) -> np.ndarray:
    """Per-vertex base magnitude with neighbourhood smoothing.

    Starts from degree-weighted lognormal draws and averages each vertex with
    its neighbours a few times, producing the transitive spatial correlation
    described in the paper's introduction.
    """
    n = graph.num_vertices
    degrees = np.array([graph.degree(v) for v in range(n)], dtype=np.float64)
    base = rng.lognormal(mean=0.0, sigma=0.6, size=n) * (1.0 + 0.5 * degrees)
    for _ in range(rounds):
        smoothed = base.copy()
        for v in range(n):
            nbrs = list(graph.neighbors(v))
            if nbrs:
                smoothed[v] = 0.5 * base[v] + 0.5 * base[nbrs].mean()
        base = smoothed
    return base


def generate_flow_series(
    graph: RoadNetwork,
    days: int = 7,
    interval_minutes: int = 60,
    mean_flow: float = 40.0,
    noise: float = 0.15,
    diffusion_rounds: int = 3,
    seed: int | None = None,
) -> FlowSeries:
    """Simulate a ``T x n`` flow series over ``graph``.

    Parameters
    ----------
    graph:
        Road network whose topology shapes the spatial correlation.
    days, interval_minutes:
        Horizon; the paper uses 7 days at 60 minutes (168 slices).
    mean_flow:
        Average per-vertex flow (vehicles per slice).
    noise:
        Relative standard deviation of multiplicative day-to-day noise.
    diffusion_rounds:
        Neighbourhood-smoothing rounds for the spatial base.
    seed:
        Seed for a dedicated :class:`numpy.random.Generator`.
    """
    if days <= 0:
        raise FlowError(f"days must be positive, got {days}")
    if MINUTES_PER_DAY % interval_minutes:
        raise FlowError(
            f"interval_minutes must divide {MINUTES_PER_DAY}, got {interval_minutes}"
        )
    if mean_flow <= 0:
        raise FlowError(f"mean_flow must be positive, got {mean_flow}")
    if noise < 0:
        raise FlowError(f"noise must be non-negative, got {noise}")

    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    slices_per_day = MINUTES_PER_DAY // interval_minutes
    total = days * slices_per_day

    profile = diurnal_profile(slices_per_day)
    base = _spatial_base(graph, rng, diffusion_rounds)
    base *= mean_flow / base.mean() if base.mean() > 0 else 1.0

    # daily profile tiled over the horizon, with per-(slice, vertex) noise
    shape = np.tile(profile, days)[:, None]  # (T, 1)
    wobble = rng.normal(loc=1.0, scale=noise, size=(total, n)).clip(min=0.05)
    matrix = shape * base[None, :] * wobble
    return FlowSeries(np.round(matrix, 3), interval_minutes)
