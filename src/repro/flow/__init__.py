"""Traffic-flow substrate: series, synthetic process, predictors, capacity."""

from repro.flow.arima import SeasonalARPredictor
from repro.flow.capacity import capacity_based_flow, synthesize_lane_counts
from repro.flow.events import (
    TrafficIncident,
    apply_incidents,
    incident_update_stream,
    random_incidents,
)
from repro.flow.predictor import (
    FlowPredictor,
    SeasonalNaivePredictor,
    TrainablePredictor,
)
from repro.flow.series import FlowSeries
from repro.flow.synthetic import diurnal_profile, generate_flow_series

__all__ = [
    "FlowPredictor",
    "SeasonalARPredictor",
    "FlowSeries",
    "TrafficIncident",
    "SeasonalNaivePredictor",
    "TrainablePredictor",
    "apply_incidents",
    "capacity_based_flow",
    "incident_update_stream",
    "random_incidents",
    "diurnal_profile",
    "generate_flow_series",
    "synthesize_lane_counts",
]
