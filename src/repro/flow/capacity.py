"""Capacity-based flow (paper Def. 4).

``C_f = W_c * P + (1 - W_c) * R`` with ``R = P / N_l`` where ``N_l`` is the
(predicted) number of lanes of each road segment.  The paper estimates lane
counts with PDFormer; we synthesise them (1..max_lanes, correlated with
vertex degree — wider roads meet more roads), which preserves the only
property downstream code uses: Ĉ_f is a per-vertex scalar blending raw flow
with a per-lane load.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FlowError
from repro.flow.series import FlowSeries
from repro.graph.road_network import RoadNetwork

__all__ = ["synthesize_lane_counts", "capacity_based_flow"]


def synthesize_lane_counts(
    graph: RoadNetwork,
    max_lanes: int = 5,
    seed: int | None = None,
) -> np.ndarray:
    """Per-vertex lane counts in ``1..max_lanes``, correlated with degree."""
    if max_lanes < 1:
        raise FlowError(f"max_lanes must be >= 1, got {max_lanes}")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    degrees = np.array([graph.degree(v) for v in range(n)], dtype=np.float64)
    max_degree = degrees.max() if n and degrees.max() > 0 else 1.0
    expected = 1.0 + (max_lanes - 1) * (degrees / max_degree)
    lanes = np.clip(np.round(expected + rng.normal(0, 0.7, size=n)), 1, max_lanes)
    return lanes.astype(np.int64)


def capacity_based_flow(
    flow: FlowSeries | np.ndarray,
    lanes: np.ndarray,
    w_c: float = 0.5,
) -> np.ndarray:
    """Blend predicted flow with per-lane load (Def. 4).

    Accepts either a full :class:`FlowSeries` (returns a ``T x n`` matrix) or
    a single per-vertex flow vector (returns a vector).
    """
    if not 0.0 <= w_c <= 1.0:
        raise FlowError(f"W_c must be in [0, 1], got {w_c}")
    values = flow.matrix if isinstance(flow, FlowSeries) else np.asarray(flow, dtype=np.float64)
    lanes = np.asarray(lanes, dtype=np.float64)
    if (lanes < 1).any():
        raise FlowError("lane counts must be >= 1")
    if values.shape[-1] != lanes.shape[0]:
        raise FlowError(
            f"lane vector length {lanes.shape[0]} does not match "
            f"{values.shape[-1]} vertices"
        )
    per_lane = values / lanes
    return w_c * values + (1.0 - w_c) * per_lane
