"""Traffic-flow predictors (the PDFormer stand-ins).

The paper treats flow prediction as an orthogonal black box: FAHL consumes a
predicted per-vertex flow for each future slice.  We provide:

* :class:`SeasonalNaivePredictor` — predicts the same slice of the previous
  day (a standard strong baseline for diurnal traffic);
* :class:`TrainablePredictor` — a stand-in for PDFormer whose accuracy is a
  monotone function of a ``epochs`` knob.  At ``epochs -> inf`` it converges
  to the ground-truth series; at low epochs its output is the ground truth
  corrupted with structured noise.  This reproduces the paper's Fig. 10
  (query time vs. training epochs) without a deep-learning stack.

All predictors expose :meth:`predict`, returning a ``T x n`` matrix aligned
with the ground-truth series they were fitted on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FlowError
from repro.flow.series import FlowSeries

__all__ = ["FlowPredictor", "SeasonalNaivePredictor", "TrainablePredictor"]


class FlowPredictor:
    """Interface: fit on a historical :class:`FlowSeries`, predict a matrix."""

    def fit(self, series: FlowSeries) -> "FlowPredictor":
        raise NotImplementedError

    def predict(self) -> FlowSeries:
        """Predicted flow for every slice of the fitted horizon."""
        raise NotImplementedError

    def accuracy(self, truth: FlowSeries) -> float:
        """1 - normalised MAE of the prediction against ``truth`` (in [0, 1])."""
        predicted = self.predict().matrix
        actual = truth.matrix
        if predicted.shape != actual.shape:
            raise FlowError(
                f"shape mismatch: predicted {predicted.shape}, truth {actual.shape}"
            )
        scale = float(actual.mean())
        if scale == 0:
            return 1.0
        mae = float(np.abs(predicted - actual).mean())
        return max(0.0, 1.0 - mae / scale)


class SeasonalNaivePredictor(FlowPredictor):
    """Predict each slice as the same slice one day earlier.

    The first day (no history) falls back to the day-of profile itself, which
    makes the predictor exact there — acceptable for a baseline.
    """

    def __init__(self) -> None:
        self._series: FlowSeries | None = None

    def fit(self, series: FlowSeries) -> "SeasonalNaivePredictor":
        self._series = series
        return self

    def predict(self) -> FlowSeries:
        if self._series is None:
            raise FlowError("predictor must be fitted before predicting")
        matrix = self._series.matrix
        day = (24 * 60) // self._series.interval_minutes
        if matrix.shape[0] <= day:
            return FlowSeries(matrix.copy(), self._series.interval_minutes)
        predicted = matrix.copy()
        predicted[day:] = matrix[:-day]
        return FlowSeries(predicted, self._series.interval_minutes)


class TrainablePredictor(FlowPredictor):
    """PDFormer stand-in with an epoch-controlled error level.

    The prediction is the ground truth corrupted by smooth multiplicative
    noise whose magnitude decays as ``base_error * decay^ (epochs / 50)``.
    With the paper's default of 200 epochs the residual error is ~2%, i.e.
    effectively the accurate prediction the paper assumes.

    Parameters
    ----------
    epochs:
        Training budget; larger means more accurate (paper sweeps 50..200).
    base_error:
        Relative error at 0 epochs.
    decay:
        Per-50-epoch multiplicative error decay.
    seed:
        Noise seed, so two predictors with equal settings agree.
    """

    def __init__(
        self,
        epochs: int = 200,
        base_error: float = 0.6,
        decay: float = 0.38,
        seed: int | None = 0,
    ) -> None:
        if epochs < 0:
            raise FlowError(f"epochs must be non-negative, got {epochs}")
        if not 0 <= base_error:
            raise FlowError(f"base_error must be non-negative, got {base_error}")
        if not 0 < decay <= 1:
            raise FlowError(f"decay must be in (0, 1], got {decay}")
        self.epochs = int(epochs)
        self.base_error = float(base_error)
        self.decay = float(decay)
        self.seed = seed
        self._series: FlowSeries | None = None

    @property
    def error_level(self) -> float:
        """Relative prediction error implied by the epoch budget."""
        return self.base_error * self.decay ** (self.epochs / 50.0)

    def fit(self, series: FlowSeries) -> "TrainablePredictor":
        self._series = series
        return self

    def predict(self) -> FlowSeries:
        if self._series is None:
            raise FlowError("predictor must be fitted before predicting")
        truth = self._series.matrix
        level = self.error_level
        if level == 0:
            return FlowSeries(truth.copy(), self._series.interval_minutes)
        rng = np.random.default_rng(self.seed)
        # Smooth noise: per-vertex bias plus slice-level wobble, so the error
        # perturbs the vertex *ordering* (what FAHL construction consumes),
        # not just adds white noise that averages out along paths.
        per_vertex = rng.normal(0.0, level, size=truth.shape[1])
        per_slice = rng.normal(0.0, level / 3.0, size=truth.shape)
        factor = np.clip(1.0 + per_vertex[None, :] + per_slice, 0.05, None)
        return FlowSeries(truth * factor, self._series.interval_minutes)
