"""Per-vertex traffic-flow time series (the ``F_v`` of Def. 1).

A :class:`FlowSeries` stores a ``T x n`` matrix of non-negative flows: one row
per time slice, one column per vertex.  The paper records 7 days at 60-minute
intervals (168 slices); both dimensions are free here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FlowError

__all__ = ["FlowSeries"]


class FlowSeries:
    """A ``T x n`` matrix of per-vertex traffic flows over time slices.

    Parameters
    ----------
    values:
        Array-like of shape ``(num_timesteps, num_vertices)``; must be
        non-negative and finite.
    interval_minutes:
        Wall-clock spacing between consecutive slices (paper default: 60).
    """

    def __init__(self, values: np.ndarray, interval_minutes: int = 60) -> None:
        matrix = np.asarray(values, dtype=np.float64)
        if matrix.ndim != 2:
            raise FlowError(f"flow matrix must be 2-D (T x n), got shape {matrix.shape}")
        if not np.isfinite(matrix).all():
            raise FlowError("flow matrix contains non-finite values")
        if (matrix < 0).any():
            raise FlowError("flow values must be non-negative")
        if interval_minutes <= 0:
            raise FlowError(f"interval_minutes must be positive, got {interval_minutes}")
        self._matrix = matrix
        self.interval_minutes = int(interval_minutes)

    # ------------------------------------------------------------------
    @property
    def num_timesteps(self) -> int:
        """Number of recorded time slices ``T``."""
        return self._matrix.shape[0]

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._matrix.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying ``T x n`` array (treat as read-only)."""
        return self._matrix

    def _check_timestep(self, t: int) -> int:
        if not -self.num_timesteps <= t < self.num_timesteps:
            raise FlowError(
                f"timestep {t} out of range [0, {self.num_timesteps})"
            )
        return t % self.num_timesteps

    def at(self, t: int) -> np.ndarray:
        """Flow vector ``fl^t`` over all vertices at slice ``t``."""
        return self._matrix[self._check_timestep(t)]

    def vertex_series(self, vertex: int) -> np.ndarray:
        """The full time series of one vertex."""
        if not 0 <= vertex < self.num_vertices:
            raise FlowError(f"vertex {vertex} out of range [0, {self.num_vertices})")
        return self._matrix[:, vertex]

    def flow(self, vertex: int, t: int) -> float:
        """Scalar flow ``fl^t_v``."""
        return float(self._matrix[self._check_timestep(t), vertex])

    def total_records(self) -> int:
        """``T * n`` — the "records" column of the paper's Table III."""
        return self.num_timesteps * self.num_vertices

    # ------------------------------------------------------------------
    def with_updates(self, t: int, updates: dict[int, float]) -> "FlowSeries":
        """Copy with ``updates`` (vertex -> new flow) applied at slice ``t``."""
        t = self._check_timestep(t)
        matrix = self._matrix.copy()
        for vertex, value in updates.items():
            if value < 0:
                raise FlowError(f"flow value must be non-negative, got {value}")
            matrix[t, vertex] = value
        return FlowSeries(matrix, self.interval_minutes)

    def resampled(self, interval_minutes: int) -> "FlowSeries":
        """Resample to a coarser/finer interval by slicing or repeating rows.

        Used by the Fig. 12 experiment (time-interval sweep).  Coarsening by a
        factor ``k`` keeps every ``k``-th slice; refining repeats slices.
        """
        if interval_minutes <= 0:
            raise FlowError(f"interval_minutes must be positive, got {interval_minutes}")
        if interval_minutes == self.interval_minutes:
            return FlowSeries(self._matrix.copy(), interval_minutes)
        if interval_minutes > self.interval_minutes:
            if interval_minutes % self.interval_minutes:
                raise FlowError(
                    "coarser interval must be a multiple of the current one"
                )
            step = interval_minutes // self.interval_minutes
            return FlowSeries(self._matrix[::step].copy(), interval_minutes)
        if self.interval_minutes % interval_minutes:
            raise FlowError("finer interval must divide the current one")
        repeat = self.interval_minutes // interval_minutes
        return FlowSeries(np.repeat(self._matrix, repeat, axis=0), interval_minutes)

    def __repr__(self) -> str:
        return (
            f"FlowSeries(T={self.num_timesteps}, n={self.num_vertices}, "
            f"interval={self.interval_minutes}min)"
        )
