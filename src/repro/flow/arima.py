"""Seasonal autoregressive flow prediction (the paper's ARIMA reference).

The related-work section positions ARIMA (Williams & Hoel) as the classic
statistical traffic forecaster.  This module implements the practical core
of that family for our per-vertex series: a seasonal AR model

.. math::

    \\hat f_t = c + \\sum_{i=1}^{p} a_i f_{t-i} + b \\cdot f_{t-s}

with the seasonal lag ``s`` set to one day of slices.  Coefficients are
shared across vertices (pooled least squares — traffic at every vertex
follows the same diurnal dynamics up to scale) and fitted with
:func:`numpy.linalg.lstsq`; predictions are one-step-ahead with observed
history (the standard evaluation protocol).  The first ``s`` slices, which
lack seasonal history, fall back to the observations themselves.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FlowError
from repro.flow.predictor import FlowPredictor
from repro.flow.series import FlowSeries

__all__ = ["SeasonalARPredictor"]


class SeasonalARPredictor(FlowPredictor):
    """Pooled seasonal-AR(p) one-step-ahead flow predictor.

    Parameters
    ----------
    ar_order:
        Number of immediate lags ``p`` (default 3).
    seasonal:
        Include the one-day seasonal lag term (default True).
    ridge:
        Small L2 regulariser on the coefficients for numerical stability.
    """

    def __init__(
        self,
        ar_order: int = 3,
        seasonal: bool = True,
        ridge: float = 1e-6,
    ) -> None:
        if ar_order < 1:
            raise FlowError(f"ar_order must be >= 1, got {ar_order}")
        if ridge < 0:
            raise FlowError(f"ridge must be non-negative, got {ridge}")
        self.ar_order = int(ar_order)
        self.seasonal = bool(seasonal)
        self.ridge = float(ridge)
        self.coefficients: np.ndarray | None = None
        self._series: FlowSeries | None = None

    # ------------------------------------------------------------------
    def _season_lag(self, series: FlowSeries) -> int:
        return (24 * 60) // series.interval_minutes

    def _design(self, series: FlowSeries) -> tuple[np.ndarray, np.ndarray]:
        """Pooled (rows = slice x vertex) design matrix and targets."""
        matrix = series.matrix
        season = self._season_lag(series) if self.seasonal else 0
        start = max(self.ar_order, season)
        if matrix.shape[0] <= start:
            raise FlowError(
                f"series too short to fit: need more than {start} slices, "
                f"got {matrix.shape[0]}"
            )
        columns = [np.ones_like(matrix[start:])]
        for lag in range(1, self.ar_order + 1):
            columns.append(matrix[start - lag: matrix.shape[0] - lag])
        if self.seasonal:
            columns.append(matrix[start - season: matrix.shape[0] - season])
        design = np.stack(
            [column.ravel() for column in columns], axis=1
        )
        target = matrix[start:].ravel()
        return design, target

    def fit(self, series: FlowSeries) -> "SeasonalARPredictor":
        """Estimate the pooled coefficients by (ridge) least squares."""
        design, target = self._design(series)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self.coefficients = np.linalg.solve(gram, design.T @ target)
        self._series = series
        return self

    def predict(self) -> FlowSeries:
        """One-step-ahead predictions over the fitted horizon."""
        if self.coefficients is None or self._series is None:
            raise FlowError("predictor must be fitted before predicting")
        series = self._series
        matrix = series.matrix
        season = self._season_lag(series) if self.seasonal else 0
        start = max(self.ar_order, season)
        predicted = matrix.copy()
        coef = self.coefficients
        for t in range(start, matrix.shape[0]):
            value = np.full(matrix.shape[1], coef[0])
            for lag in range(1, self.ar_order + 1):
                value += coef[lag] * matrix[t - lag]
            if self.seasonal:
                value += coef[-1] * matrix[t - season]
            predicted[t] = np.clip(value, 0.0, None)
        return FlowSeries(predicted, series.interval_minutes)
