"""Traffic incidents: localised congestion events over an FRN.

The update streams of Section VI perturb random vertices/edges uniformly;
real congestion is spatially structured — an accident jams a vertex, the
jam bleeds into neighbours and decays over time.  This module models that:

* :class:`TrafficIncident` — an epicentre vertex, a start slice, a
  duration, a severity multiplier and a hop radius;
* :func:`apply_incidents` — bake a set of incidents into a flow series
  (multiplicative surge with exponential spatial decay and linear
  temporal ramp-down);
* :func:`incident_update_stream` — turn incidents into the per-slice
  ``{vertex: new_flow}`` update dictionaries that
  :func:`repro.core.maintenance.apply_flow_updates` consumes, so index
  maintenance can be exercised under realistic, correlated updates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import FlowError
from repro.flow.series import FlowSeries
from repro.graph.road_network import RoadNetwork

__all__ = ["TrafficIncident", "apply_incidents", "incident_update_stream",
           "random_incidents"]


@dataclass(frozen=True)
class TrafficIncident:
    """One localised congestion event."""

    epicentre: int
    start: int
    duration: int
    severity: float = 3.0
    radius: int = 2

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise FlowError(f"duration must be >= 1, got {self.duration}")
        if self.severity <= 1.0:
            raise FlowError(
                f"severity must exceed 1 (a surge), got {self.severity}"
            )
        if self.radius < 0:
            raise FlowError(f"radius must be >= 0, got {self.radius}")

    def intensity(self, slice_offset: int, hops: int) -> float:
        """Multiplier applied ``slice_offset`` slices in, ``hops`` away.

        Full severity at the epicentre when the incident starts, halving
        per hop, ramping linearly back to 1 over the duration.
        """
        if not 0 <= slice_offset < self.duration or hops > self.radius:
            return 1.0
        spatial = 0.5 ** hops
        temporal = 1.0 - slice_offset / self.duration
        return 1.0 + (self.severity - 1.0) * spatial * temporal


def _hop_distances(graph: RoadNetwork, source: int, radius: int) -> dict[int, int]:
    hops = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        if hops[u] == radius:
            continue
        for v in graph.neighbors(u):
            if v not in hops:
                hops[v] = hops[u] + 1
                queue.append(v)
    return hops


def random_incidents(
    graph: RoadNetwork,
    num_timesteps: int,
    count: int,
    seed: int = 0,
    severity: tuple[float, float] = (2.0, 6.0),
    duration: tuple[int, int] = (2, 6),
    radius: int = 2,
) -> list[TrafficIncident]:
    """Sample ``count`` incidents uniformly over vertices and slices."""
    if count < 0:
        raise FlowError(f"count must be >= 0, got {count}")
    if num_timesteps < 1:
        raise FlowError(f"num_timesteps must be >= 1, got {num_timesteps}")
    rng = np.random.default_rng(seed)
    incidents = []
    for _ in range(count):
        incidents.append(
            TrafficIncident(
                epicentre=int(rng.integers(graph.num_vertices)),
                start=int(rng.integers(num_timesteps)),
                duration=int(rng.integers(duration[0], duration[1] + 1)),
                severity=float(rng.uniform(*severity)),
                radius=radius,
            )
        )
    return incidents


def apply_incidents(
    graph: RoadNetwork,
    series: FlowSeries,
    incidents: list[TrafficIncident],
) -> FlowSeries:
    """Bake incidents into a flow series (returns a new series)."""
    matrix = series.matrix.copy()
    for incident in incidents:
        if not 0 <= incident.epicentre < graph.num_vertices:
            raise FlowError(f"incident epicentre {incident.epicentre} unknown")
        hops = _hop_distances(graph, incident.epicentre, incident.radius)
        for offset in range(incident.duration):
            t = incident.start + offset
            if not 0 <= t < series.num_timesteps:
                continue
            for vertex, distance in hops.items():
                matrix[t, vertex] *= incident.intensity(offset, distance)
    return FlowSeries(matrix, series.interval_minutes)


def incident_update_stream(
    graph: RoadNetwork,
    series: FlowSeries,
    incidents: list[TrafficIncident],
) -> dict[int, dict[int, float]]:
    """Per-slice flow-update dictionaries implied by the incidents.

    Returns ``{slice: {vertex: new_flow}}`` containing only the vertices an
    incident actually touches at that slice — the input an online system
    would feed to :func:`repro.core.maintenance.apply_flow_updates`.
    """
    surged = apply_incidents(graph, series, incidents)
    stream: dict[int, dict[int, float]] = {}
    changed = surged.matrix != series.matrix
    for t, row in enumerate(changed):
        vertices = np.nonzero(row)[0]
        if len(vertices):
            stream[t] = {
                int(v): float(surged.matrix[t, v]) for v in vertices
            }
    return stream
