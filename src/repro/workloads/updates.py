"""Update-stream generation for the maintenance experiments.

Section VI drives the maintenance algorithms with three knobs:

* an *average number of flow changes* per event ({4, 8, 12, 16} — Fig. 8);
* an average number of weight changes (default 4 — Fig. 9);
* an *update ratio* λ = (#flow changes)/(#weight changes) over a fixed
  total budget (Fig. 13).

The generators below sample those streams reproducibly from an FRN.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork

__all__ = [
    "generate_weight_updates",
    "generate_flow_updates",
    "generate_mixed_updates",
]


def generate_weight_updates(
    graph: RoadNetwork,
    count: int,
    magnitude: tuple[float, float] = (0.5, 2.0),
    seed: int = 0,
) -> list[tuple[int, int, float]]:
    """``count`` random edge-weight changes as ``(u, v, new_weight)``.

    New weights are the old weight scaled by a uniform factor from
    ``magnitude`` and rounded to stay integer-like (DIMACS style), never
    below 1.
    """
    if count < 0:
        raise QueryError(f"count must be >= 0, got {count}")
    lo, hi = magnitude
    if not 0 < lo <= hi:
        raise QueryError(f"magnitude must satisfy 0 < lo <= hi, got {magnitude}")
    rng = np.random.default_rng(seed)
    edges = list(graph.edges())
    if not edges and count:
        raise QueryError("graph has no edges to update")
    updates: list[tuple[int, int, float]] = []
    for index in rng.integers(0, len(edges), size=count):
        u, v, w = edges[int(index)]
        factor = rng.uniform(lo, hi)
        updates.append((u, v, float(max(1.0, round(w * factor)))))
    return updates


def generate_flow_updates(
    frn: FlowAwareRoadNetwork,
    count: int,
    timestep: int = 0,
    magnitude: tuple[float, float] = (0.3, 3.0),
    seed: int = 0,
) -> dict[int, float]:
    """``count`` distinct vertex flow changes as ``{vertex: new_flow}``.

    New flows scale the vertex's predicted flow at ``timestep`` by a uniform
    factor from ``magnitude``.
    """
    if count < 0:
        raise QueryError(f"count must be >= 0, got {count}")
    n = frn.num_vertices
    if count > n:
        raise QueryError(f"cannot pick {count} distinct vertices out of {n}")
    rng = np.random.default_rng(seed)
    current = frn.predicted_at(timestep % frn.num_timesteps)
    vertices = rng.choice(n, size=count, replace=False)
    lo, hi = magnitude
    return {
        int(v): float(max(0.0, current[int(v)] * rng.uniform(lo, hi)))
        for v in vertices
    }


def generate_mixed_updates(
    frn: FlowAwareRoadNetwork,
    total: int,
    update_ratio: float,
    timestep: int = 0,
    seed: int = 0,
) -> tuple[dict[int, float], list[tuple[int, int, float]]]:
    """Split a ``total`` update budget by λ = flow changes / weight changes.

    Returns ``(flow_updates, weight_updates)`` with
    ``len(flow) / len(weight) ≈ update_ratio`` and
    ``len(flow) + len(weight) == total`` (Fig. 13's workload).
    """
    if total < 0:
        raise QueryError(f"total must be >= 0, got {total}")
    if update_ratio <= 0:
        raise QueryError(f"update_ratio must be positive, got {update_ratio}")
    num_flow = int(round(total * update_ratio / (1.0 + update_ratio)))
    num_flow = min(num_flow, frn.num_vertices)
    num_weight = total - num_flow
    flows = generate_flow_updates(
        frn, num_flow, timestep=timestep, seed=seed
    )
    weights = generate_weight_updates(frn.graph, num_weight, seed=seed + 1)
    return flows, weights
