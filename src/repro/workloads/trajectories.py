"""Trajectory-driven traffic flow: the T-drive-style substrate, closed loop.

The paper's BRN flows come from real taxi trajectories (T-drive).  This
module simulates that provenance instead of drawing flows from a purely
statistical process: a population of vehicles plans trips with the
library's own routing (so route choice reacts to distance), trips are laid
out over the day following the diurnal demand profile, and the per-vertex
*passage counts* per time slice become the flow series — i.e. the flow an
FRN carries is literally "the number of vehicles passing through the
vertex when a user arrives" (the paper's definition).

This also enables congestion-feedback studies (the SBTC/GRO line of
related work): route the fleet flow-aware on the induced flows, re-count,
and compare congestion against distance-only routing
(:func:`reroute_flow_aware`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FlowError
from repro.flow.series import FlowSeries
from repro.flow.synthetic import MINUTES_PER_DAY, diurnal_profile
from repro.graph.road_network import RoadNetwork

__all__ = ["Trip", "generate_trips", "flows_from_trips", "reroute_flow_aware"]


@dataclass(frozen=True)
class Trip:
    """One vehicle journey: a departure slice and a vertex path."""

    departure: int
    path: tuple[int, ...]


def generate_trips(
    graph: RoadNetwork,
    oracle,
    num_vehicles: int,
    days: int = 1,
    interval_minutes: int = 60,
    trips_per_vehicle_per_day: float = 2.0,
    seed: int = 0,
) -> list[Trip]:
    """Simulate a fleet's daily trips with shortest-path route choice.

    ``oracle`` must expose ``path(u, v)`` (any index or the Dijkstra
    oracle).  Departure slices follow the diurnal demand profile, so rush
    hours see proportionally more departures.
    """
    if num_vehicles < 1:
        raise FlowError(f"num_vehicles must be >= 1, got {num_vehicles}")
    if days < 1:
        raise FlowError(f"days must be >= 1, got {days}")
    if MINUTES_PER_DAY % interval_minutes:
        raise FlowError(
            f"interval_minutes must divide {MINUTES_PER_DAY}, "
            f"got {interval_minutes}"
        )
    if trips_per_vehicle_per_day <= 0:
        raise FlowError("trips_per_vehicle_per_day must be positive")

    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    slices_per_day = MINUTES_PER_DAY // interval_minutes
    profile = diurnal_profile(slices_per_day)
    demand = profile / profile.sum()

    trips: list[Trip] = []
    total_trips = int(round(num_vehicles * trips_per_vehicle_per_day * days))
    day_of = rng.integers(0, days, size=total_trips)
    slot_of = rng.choice(slices_per_day, size=total_trips, p=demand)
    for day, slot in zip(day_of, slot_of):
        source, target = rng.integers(0, n, size=2)
        if source == target:
            continue
        path = oracle.path(int(source), int(target))
        if len(path) < 2:
            continue
        trips.append(
            Trip(departure=int(day * slices_per_day + slot), path=tuple(path))
        )
    return trips


def flows_from_trips(
    trips: list[Trip],
    num_vertices: int,
    num_timesteps: int,
    interval_minutes: int = 60,
    hops_per_slice: int = 8,
) -> FlowSeries:
    """Count per-vertex vehicle passages per slice (Def. 1's ``F_v``).

    Vehicles advance ``hops_per_slice`` road segments per time slice, so a
    long trip spreads its passages over several slices — the transitive
    spatial correlation the paper describes arises naturally.
    """
    if num_timesteps < 1:
        raise FlowError(f"num_timesteps must be >= 1, got {num_timesteps}")
    if hops_per_slice < 1:
        raise FlowError(f"hops_per_slice must be >= 1, got {hops_per_slice}")
    matrix = np.zeros((num_timesteps, num_vertices))
    for trip in trips:
        for hop, vertex in enumerate(trip.path):
            t = trip.departure + hop // hops_per_slice
            if 0 <= t < num_timesteps:
                matrix[t, vertex] += 1.0
    return FlowSeries(matrix, interval_minutes)


def reroute_flow_aware(
    trips: list[Trip],
    engine,
) -> tuple[list[Trip], float]:
    """Re-plan every trip with a flow-aware engine on the induced flows.

    Returns the re-planned trips and the relative congestion change: the
    mean per-trip path flow of the new plans divided by the old plans',
    evaluated under the *original* flow field (the engine's FRN).  Values
    below 1 mean the fleet collectively dodged congestion.
    """
    if not trips:
        raise FlowError("reroute_flow_aware needs at least one trip")
    from repro.core.fspq import FSPQuery  # local import: avoid cycles

    frn = engine.frn
    horizon = frn.num_timesteps
    old_flow = new_flow = 0.0
    rerouted: list[Trip] = []
    for trip in trips:
        t = trip.departure % horizon
        flow_vector = frn.predicted_at(t)
        old_flow += float(np.take(flow_vector, trip.path).sum())
        result = engine.query(
            FSPQuery(trip.path[0], trip.path[-1], t)
        )
        new_flow += result.flow
        rerouted.append(Trip(departure=trip.departure, path=result.path))
    ratio = new_flow / old_flow if old_flow > 0 else 1.0
    return rerouted, ratio
