"""Dataset registry: scaled synthetic stand-ins for the paper's networks.

The paper evaluates on BRN (Beijing, T-drive), NYC, BAY and COL (DIMACS).
Those datasets are not shipped offline and pure-Python labeling cannot
process 435K vertices in benchmark time, so the registry provides synthetic
networks with road-like topology at reproduction scale, preserving the
paper's *relative* ordering of sizes (BRN < NYC < BAY < COL) and its flow
recording scheme (7 days at 60-minute slices = 168 timesteps per vertex).

``scale`` shrinks or grows every dataset together, so benchmarks can run on
small instances while `fahl-repro` experiments use the defaults.  Real
DIMACS files can be loaded with :func:`repro.graph.dimacs.load_dimacs` and
wrapped via :func:`make_frn`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DatasetFormatError
from repro.flow.capacity import synthesize_lane_counts
from repro.flow.predictor import TrainablePredictor
from repro.flow.synthetic import generate_flow_series
from repro.graph.dimacs import load_dimacs
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import (
    grid_network,
    random_road_network,
    ring_radial_network,
)
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import is_connected, largest_component

__all__ = [
    "Dataset",
    "DATASET_NAMES",
    "DIMACS_PREFIX",
    "load_dataset",
    "load_dimacs_dataset",
    "make_frn",
    "dataset_statistics",
]

DATASET_NAMES = ("BRN", "NYC", "BAY", "COL")

#: dataset-name prefix selecting a real DIMACS ``.gr`` file instead of a
#: synthetic stand-in: ``"dimacs:/path/to/net.gr"`` loads the file (plus a
#: sibling ``.co`` when present) and attaches synthetic flows via
#: :func:`make_frn` — which is all the experiment runner and CLI need to
#: run every experiment on a real network.
DIMACS_PREFIX = "dimacs:"

#: base vertex budgets at scale=1.0 (relative sizes follow the paper)
_BASE_SIZES = {"BRN": 1000, "NYC": 1700, "BAY": 2400, "COL": 3200}


@dataclass(frozen=True)
class Dataset:
    """A named FRN plus provenance metadata."""

    name: str
    frn: FlowAwareRoadNetwork
    description: str
    seed: int

    @property
    def num_vertices(self) -> int:
        return self.frn.num_vertices

    @property
    def num_edges(self) -> int:
        return self.frn.num_edges

    @property
    def num_records(self) -> int:
        """Flow records = vertices x timesteps (Table III's last column)."""
        return self.frn.flow.total_records()


def _build_graph(name: str, scale: float, seed: int) -> RoadNetwork:
    if name not in _BASE_SIZES:
        raise DatasetFormatError(
            f"unknown dataset {name!r}; choose one of {DATASET_NAMES}"
        )
    target = max(16, int(_BASE_SIZES[name] * scale))
    if name == "BRN":
        # Beijing: ring-and-spoke city structure
        spokes = max(8, int(math.sqrt(target * 2.2)))
        rings = max(2, target // spokes)
        return ring_radial_network(rings, spokes, seed=seed)
    if name == "NYC":
        # Manhattan-ish dense grid
        side = max(4, int(math.sqrt(target / 0.9)))
        return grid_network(side, side, delete_fraction=0.10,
                            diagonal_fraction=0.03, seed=seed)
    if name == "BAY":
        # sprawling geometric network
        return random_road_network(int(target * 1.05), k_nearest=3, seed=seed)
    if name == "COL":
        # sparse state-wide grid with many deletions
        side = max(4, int(math.sqrt(target / 0.82)))
        return grid_network(side, side, delete_fraction=0.18,
                            diagonal_fraction=0.02, seed=seed)
    raise DatasetFormatError(
        f"unknown dataset {name!r}; choose one of {DATASET_NAMES}"
    )


def make_frn(
    graph: RoadNetwork,
    days: int = 7,
    interval_minutes: int = 60,
    epochs: int = 200,
    mean_flow: float = 40.0,
    seed: int = 0,
) -> FlowAwareRoadNetwork:
    """Attach a synthetic flow series + epoch-accurate prediction + lanes."""
    truth = generate_flow_series(
        graph,
        days=days,
        interval_minutes=interval_minutes,
        mean_flow=mean_flow,
        seed=seed,
    )
    predictor = TrainablePredictor(epochs=epochs, seed=seed + 1).fit(truth)
    lanes = synthesize_lane_counts(graph, seed=seed + 2)
    return FlowAwareRoadNetwork(
        graph, truth, predicted_flow=predictor.predict(), lanes=lanes
    )


def load_dataset(
    name: str,
    scale: float = 1.0,
    days: int = 7,
    interval_minutes: int = 60,
    epochs: int = 200,
    seed: int = 0,
) -> Dataset:
    """Build one of the four named datasets at the given scale.

    Parameters
    ----------
    name:
        ``"BRN"``, ``"NYC"``, ``"BAY"`` or ``"COL"``.
    scale:
        Multiplier on the base vertex budget (benchmarks use < 1).
    epochs:
        Prediction quality for the FRN's predicted flow series (Fig. 10).
    """
    if name.lower().startswith(DIMACS_PREFIX):
        return load_dimacs_dataset(
            name[len(DIMACS_PREFIX):],
            days=days,
            interval_minutes=interval_minutes,
            epochs=epochs,
            seed=seed,
        )
    name = name.upper()
    if scale <= 0:
        raise DatasetFormatError(f"scale must be positive, got {scale}")
    graph = _build_graph(name, scale, seed)
    frn = make_frn(
        graph,
        days=days,
        interval_minutes=interval_minutes,
        epochs=epochs,
        seed=seed,
    )
    descriptions = {
        "BRN": "Beijing-like ring-radial stand-in",
        "NYC": "New York-like dense grid stand-in",
        "BAY": "Bay-Area-like geometric stand-in",
        "COL": "Colorado-like sparse grid stand-in",
    }
    return Dataset(name=name, frn=frn, description=descriptions[name], seed=seed)


def load_dimacs_dataset(
    gr_path: str,
    days: int = 7,
    interval_minutes: int = 60,
    epochs: int = 200,
    seed: int = 0,
) -> Dataset:
    """Load a real DIMACS ``.gr`` network as a flow-aware dataset.

    A sibling ``.co`` coordinate file (same stem) is picked up
    automatically when present.  Disconnected inputs are restricted to
    their largest connected component — labeling and the experiments
    require connectivity, and DIMACS extracts occasionally carry stray
    islands.  Flows are synthesised exactly like the named datasets, so
    every experiment and benchmark runs unchanged on real topology.
    """
    path = Path(gr_path).expanduser()
    if not path.is_file():
        raise DatasetFormatError(f"DIMACS graph file not found: {path}")
    co_path = path.with_suffix(".co")
    graph = load_dimacs(path, co_path if co_path.is_file() else None)
    description = f"DIMACS network from {path}"
    if not is_connected(graph):
        full = graph.num_vertices
        graph, _ = largest_component(graph)
        description += (
            f" (largest component: {graph.num_vertices}/{full} vertices)"
        )
    frn = make_frn(
        graph,
        days=days,
        interval_minutes=interval_minutes,
        epochs=epochs,
        seed=seed,
    )
    return Dataset(
        name=f"{DIMACS_PREFIX}{path}",
        frn=frn,
        description=description,
        seed=seed,
    )


def dataset_statistics(datasets: list[Dataset]) -> list[dict[str, object]]:
    """Table III rows for a list of datasets."""
    return [
        {
            "Dataset": d.name,
            "Vertices": d.num_vertices,
            "Edges": d.num_edges,
            "Description": d.description,
            "Records": d.num_records,
        }
        for d in datasets
    ]
