"""Query-group generation (the paper's FQ1 .. FQ12 workload).

Section VI buckets queries into twelve groups by the distance between query
location and destination, growing geometrically up to (a fraction of) the
network diameter, and samples queries uniformly within each band at random
time slices.  The paper's banding formula is reproduced in spirit: twelve
geometric bands between ``diameter * min_fraction`` and ``diameter *
max_fraction``; longer bands mean longer — and for every method slower —
queries (Fig. 6's x-axis).
"""

from __future__ import annotations


import numpy as np

from repro.baselines.dijkstra import dijkstra_distances
from repro.core.fspq import FSPQuery
from repro.errors import QueryError
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork

__all__ = ["estimate_diameter", "distance_bands", "generate_query_groups"]


def estimate_diameter(graph: RoadNetwork, seed: int = 0) -> float:
    """Weighted pseudo-diameter via a double Dijkstra sweep."""
    if graph.num_vertices == 0:
        raise QueryError("cannot estimate the diameter of an empty graph")
    rng = np.random.default_rng(seed)
    start = int(rng.integers(graph.num_vertices))
    dist = dijkstra_distances(graph, start)
    finite = np.where(np.isfinite(dist))[0]
    far = int(finite[np.argmax(dist[finite])])
    dist2 = dijkstra_distances(graph, far)
    finite2 = np.isfinite(dist2)
    return float(dist2[finite2].max())


def distance_bands(
    diameter: float,
    num_groups: int = 12,
    min_fraction: float = 1.0 / 16.0,
    max_fraction: float = 0.5,
) -> list[tuple[float, float]]:
    """Geometric ``(low, high]`` distance bands for the FQ groups."""
    if num_groups < 1:
        raise QueryError(f"num_groups must be >= 1, got {num_groups}")
    if not 0 < min_fraction < max_fraction <= 1:
        raise QueryError(
            f"need 0 < min_fraction < max_fraction <= 1, got "
            f"({min_fraction}, {max_fraction})"
        )
    low = diameter * min_fraction
    high = diameter * max_fraction
    ratio = (high / low) ** (1.0 / num_groups)
    bands = []
    edge = low
    for _ in range(num_groups):
        nxt = edge * ratio
        bands.append((edge, nxt))
        edge = nxt
    return bands


def generate_query_groups(
    frn: FlowAwareRoadNetwork,
    num_groups: int = 12,
    queries_per_group: int = 10,
    min_fraction: float = 1.0 / 16.0,
    max_fraction: float = 0.5,
    seed: int = 0,
    max_attempts: int = 200,
) -> list[list[FSPQuery]]:
    """Sample FQ1..FQ12 query groups over an FRN.

    Each query gets a uniform random time slice.  Groups whose band is
    unpopulated on the given graph may come back short (never silently
    padded with out-of-band queries); callers should check lengths.
    """
    if queries_per_group < 1:
        raise QueryError(f"queries_per_group must be >= 1, got {queries_per_group}")
    graph = frn.graph
    rng = np.random.default_rng(seed)
    diameter = estimate_diameter(graph, seed=seed)
    bands = distance_bands(
        diameter,
        num_groups=num_groups,
        min_fraction=min_fraction,
        max_fraction=max_fraction,
    )
    groups: list[list[FSPQuery]] = []
    n = graph.num_vertices
    horizon = frn.num_timesteps
    for low, high in bands:
        queries: list[FSPQuery] = []
        attempts = 0
        while len(queries) < queries_per_group and attempts < max_attempts:
            attempts += 1
            source = int(rng.integers(n))
            dist = dijkstra_distances(graph, source, cutoff=high)
            in_band = np.where((dist > low) & (dist <= high))[0]
            if len(in_band) == 0:
                continue
            take = min(
                queries_per_group - len(queries),
                max(1, len(in_band) // 4),
            )
            for target in rng.choice(in_band, size=take, replace=False):
                queries.append(
                    FSPQuery(
                        source=source,
                        target=int(target),
                        timestep=int(rng.integers(horizon)),
                    )
                )
        groups.append(queries)
    return groups


def flatten_groups(groups: list[list[FSPQuery]]) -> list[FSPQuery]:
    """All queries of all groups, in group order."""
    return [query for group in groups for query in group]
