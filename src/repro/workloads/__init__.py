"""Datasets, query groups and update streams for the experiments."""

from repro.workloads.datasets import (
    DATASET_NAMES,
    Dataset,
    dataset_statistics,
    load_dataset,
    make_frn,
)
from repro.workloads.queries import (
    distance_bands,
    estimate_diameter,
    flatten_groups,
    generate_query_groups,
)
from repro.workloads.trajectories import (
    Trip,
    flows_from_trips,
    generate_trips,
    reroute_flow_aware,
)
from repro.workloads.updates import (
    generate_flow_updates,
    generate_mixed_updates,
    generate_weight_updates,
)

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "Trip",
    "flows_from_trips",
    "generate_trips",
    "reroute_flow_aware",
    "dataset_statistics",
    "distance_bands",
    "estimate_diameter",
    "flatten_groups",
    "generate_flow_updates",
    "generate_mixed_updates",
    "generate_query_groups",
    "generate_weight_updates",
    "load_dataset",
    "make_frn",
]
