"""FAHL core: index, maintenance, pruning bounds, and the FPSPS engine."""

from repro.core.batch import BatchReport, MemoizedOracle, batch_query
from repro.core.bounds import FlowBounds, adaptive_upper_bound, lemma4_bounds
from repro.core.constrained import (
    ConstrainedFlowAwareEngine,
    ConstraintError,
    QueryConstraints,
)
from repro.core.departure import DeparturePlan, best_departure
from repro.core.fahl import FAHLIndex, build_fahl
from repro.core.knn import KNNMatch, flow_aware_knn
from repro.core.navigation import (
    NavigationLog,
    NavigationSession,
    compare_static_vs_live,
)
from repro.core.skyline import SkylinePath, SkylineResult, skyline_paths
from repro.core.fpsps import PRUNING_MODES, FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.core.stats import IndexStatistics, compare_indexes, index_statistics
from repro.core.maintenance import (
    FAULT_POINTS,
    IndexSnapshot,
    LabelUpdateStats,
    StructureUpdateStats,
    apply_flow_update,
    apply_flow_updates,
    apply_weight_update,
    apply_weight_updates,
)

__all__ = [
    "BatchReport",
    "ConstrainedFlowAwareEngine",
    "ConstraintError",
    "FAHLIndex",
    "FAULT_POINTS",
    "IndexSnapshot",
    "FSPQuery",
    "FSPResult",
    "FlowAwareEngine",
    "DeparturePlan",
    "FlowBounds",
    "MemoizedOracle",
    "KNNMatch",
    "NavigationLog",
    "NavigationSession",
    "IndexStatistics",
    "LabelUpdateStats",
    "PRUNING_MODES",
    "QueryConstraints",
    "SkylinePath",
    "SkylineResult",
    "StructureUpdateStats",
    "adaptive_upper_bound",
    "compare_indexes",
    "compare_static_vs_live",
    "index_statistics",
    "apply_flow_update",
    "apply_flow_updates",
    "apply_weight_update",
    "apply_weight_updates",
    "batch_query",
    "best_departure",
    "build_fahl",
    "flow_aware_knn",
    "skyline_paths",
    "lemma4_bounds",
]
