"""Flow Priority Shortest Path Search (FPSPS, paper Alg. 5).

:class:`FlowAwareEngine` evaluates FSPQ queries in the two stages of
Section V:

1. compute ``SPDis(Q_u, D_u)`` with the configured distance oracle and
   enumerate the candidate set within ``MCPDis = η_u · SPDis``;
2. compute each candidate's path flow, apply the flow pruning bounds, and
   score the survivors with Eq. 1, keeping the minimum.

The engine is method-agnostic: plugging in a FAHL/H2H/CH/G-tree oracle (or
``None`` for the index-free A* baseline) yields the paper's comparison rows.
``pruning`` selects FAHL-W's Lemma-4 bounds (paper behaviour), the
always-sound adaptive bound, or no pruning (FAHL-O and all baselines).

With pruning enabled the engine consumes candidates *lazily* (Yen's
generator yields them in non-decreasing distance) and applies a
score-dominance stop: once the next candidate's normalised-distance term
``α · PDis'`` alone exceeds the best score seen, no farther candidate can
win and the remaining — and dominant — spur-search work is skipped.  This
realises the paper's claim that "when we prune this candidate path, we do
not need to continue computing its distance".  The stop excludes the
triggering candidate, so the returned optimum is exact over the enumerated
prefix; results can differ from the unpruned engine only through the
min-max flow anchors, which is reported via ``early_stopped`` (and measured
in EXPERIMENTS.md).
"""

from __future__ import annotations

import contextlib
import math
import time

import numpy as np

from repro import obs
from repro.core.bounds import (
    adaptive_prune_mask,
    adaptive_upper_bound,
    lemma4_bounds,
)
from repro.core.flatq import FlatQueryKernel
from repro.core.fspq import FSPQuery, FSPResult
from repro.core.overlay import OverlayOracle
from repro.errors import QueryError
from repro.graph.frn import FlowAwareRoadNetwork
from repro.labeling.hierarchy import HierarchyIndex
from repro.paths.astar_search import astar_path
from repro.paths.candidates import (
    enumerate_all_paths_within,
    generate_candidates,
    heuristic_for,
)
from repro.paths.scoring import NormalizationContext, path_flow
from repro.paths.yen import iter_shortest_paths

__all__ = ["FlowAwareEngine", "KERNEL_MODES", "PRUNING_MODES"]

PRUNING_MODES = ("none", "lemma4", "adaptive")
KERNEL_MODES = ("flat", "scalar")

#: kernel stats exported to the metrics registry after each flat query
_KERNEL_COUNTERS = {
    "astar_runs": (
        "repro_flatq_spur_searches_total",
        "A* spur searches run by the flat kernel",
    ),
    "spur_memo_hits": (
        "repro_flatq_spur_memo_hits_total",
        "spur searches answered from the kernel memo table",
    ),
    "spur_skips": (
        "repro_flatq_spur_skips_total",
        "spur searches skipped by the lookahead lower bound",
    ),
    "heuristic_builds": (
        "repro_flatq_heuristic_builds_total",
        "one-to-all heuristic tables built by the flat kernel",
    ),
}


def _counter_total(snapshot: dict, name: str) -> int:
    """Sum a counter family's series values in a registry snapshot."""
    entry = snapshot.get(name)
    if not entry:
        return 0
    return int(sum(series["value"] for series in entry["series"]))


class FlowAwareEngine:
    """FSPQ query engine (Alg. 5) over a pluggable distance oracle.

    Parameters
    ----------
    frn:
        The flow-aware road network (graph + predicted flows).
    oracle:
        Object with ``distance(u, v)`` (FAHL, H2H, CH, G-tree, Dijkstra
        oracle) or ``None`` for the index-free A* baseline.
    alpha:
        Eq. 1's distance/flow blend (paper default 0.5).
    eta_u:
        User distance-constraint factor, ``MCPDis = eta_u * SPDis``
        (paper default 3).
    pruning:
        ``"lemma4"`` (FAHL-W: Lemma-4 flow bounds plus the lazy
        score-dominance enumeration stop), ``"adaptive"`` (provably
        lossless scoring-only flow bound) or ``"none"`` (FAHL-O and all
        baselines).
    max_candidates:
        Enumeration cap; truncation is reported on the result.
    use_capacity, w_c:
        Score with the capacity-based flow Ĉ_f of Def. 4 (the ``+``
        variants of Fig. 11) instead of the raw predicted flow.
    exhaustive:
        Replace bounded Yen with exhaustive DFS enumeration (reference
        semantics for tests/small graphs; exponential).
    min_candidates:
        The lazy score-dominance stop never fires before this many
        candidates have been enumerated — a quality floor trading a little
        enumeration work for much better agreement with the unpruned
        optimum (measured in EXPERIMENTS.md).
    kernel:
        ``"flat"`` (default) evaluates queries through the vectorised
        :class:`~repro.core.flatq.FlatQueryKernel` whenever the oracle is
        a hierarchy index over this FRN's graph — bit-identical results,
        roughly an order of magnitude faster.  ``"scalar"`` forces the
        reference pure-Python path (the exactness baseline the flat
        kernel is tested against).  Oracles the kernel cannot speak for
        (``None``, non-hierarchy baselines, ALT-style oracles with their
        own heuristic factory, exhaustive mode) silently use the scalar
        path either way.
    """

    def __init__(
        self,
        frn: FlowAwareRoadNetwork,
        oracle=None,
        alpha: float = 0.5,
        eta_u: float = 3.0,
        pruning: str = "none",
        max_candidates: int = 64,
        use_capacity: bool = False,
        w_c: float = 0.5,
        exhaustive: bool = False,
        min_candidates: int = 4,
        kernel: str = "flat",
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise QueryError(f"alpha must be in (0, 1), got {alpha}")
        if eta_u <= 1.0:
            raise QueryError(f"eta_u must be > 1, got {eta_u}")
        if pruning not in PRUNING_MODES:
            raise QueryError(f"pruning must be one of {PRUNING_MODES}, got {pruning!r}")
        if max_candidates < 1:
            raise QueryError(f"max_candidates must be >= 1, got {max_candidates}")
        self.frn = frn
        self.oracle = oracle
        self.alpha = float(alpha)
        self.eta_u = float(eta_u)
        self.pruning = pruning
        self.max_candidates = int(max_candidates)
        self.use_capacity = use_capacity
        self.w_c = float(w_c)
        self.exhaustive = exhaustive
        if min_candidates < 1:
            raise QueryError(f"min_candidates must be >= 1, got {min_candidates}")
        self.min_candidates = int(min_candidates)
        if kernel not in KERNEL_MODES:
            raise QueryError(
                f"kernel must be one of {KERNEL_MODES}, got {kernel!r}"
            )
        self.kernel = kernel
        self._flow_cache: dict[int, np.ndarray] = {}
        self._flat_kernel_cache: FlatQueryKernel | None = None

    # ------------------------------------------------------------------
    def _flow_at(self, t: int) -> np.ndarray:
        vector = self._flow_cache.get(t)
        if vector is None:
            if self.use_capacity:
                vector = self.frn.capacity_flow_at(t, w_c=self.w_c)
            else:
                vector = self.frn.predicted_at(t)
            self._flow_cache[t] = vector
        return vector

    def invalidate(self) -> None:
        """Drop every derived cache (call after any maintenance).

        This is the canonical invalidation hook of the engine protocol
        (docs/API.md): serving layers chain their own epoch bumps off it
        so maintenance can never refresh one cache and miss another.
        """
        self._flow_cache.clear()
        self._flat_kernel_cache = None

    def prime(self) -> None:
        """Rebuild the flat kernel eagerly (a no-op for scalar engines).

        After an index swap, :meth:`invalidate` leaves the kernel to be
        rebuilt lazily — which would bill the arena/adjacency build to the
        first query on the new index.  Background maintenance (the serving
        layer's consolidation pass) calls this right after the swap so the
        rebuild happens on the maintenance plane instead.
        """
        self._flat_kernel()

    def _flat_kernel(self) -> FlatQueryKernel | None:
        """The flat kernel for the current oracle, or ``None``.

        The kernel speaks for hierarchy indexes over exactly this FRN's
        graph whose heuristic is the plain exact-distance oracle wrap, and
        for :class:`~repro.core.overlay.OverlayOracle` wrappers over such
        an index (stable ⊕ overlay serving: the kernel's heuristic tables
        and adjacency then track the overlay's exact current-graph view).
        The batch path's :class:`~repro.core.batch.MemoizedOracle` swap is
        transparent: the kernel reads the label arena directly and never
        calls ``oracle.distance``, so it is unwrapped to the index it
        memoises (keyed on that inner index, the cached kernel survives
        the per-batch wrapper churn).  Anything else (index-free
        baselines, ALT oracles with a ``heuristic`` factory, exhaustive
        enumeration) falls back to the scalar reference.  A cached kernel
        is dropped whenever the underlying index object changes,
        maintenance bumps its label version, or (overlay-free) the graph's
        ``mutation_version`` moves — an ILU can change an off-shortest-path
        edge weight without touching any label; an overlay version bump
        only triggers the cheap in-place adjacency resync.
        """
        if self.kernel != "flat" or self.exhaustive:
            return None
        from repro.core.batch import MemoizedOracle  # circular at module scope

        oracle = self.oracle
        if isinstance(oracle, MemoizedOracle):
            oracle = oracle.wrapped
        overlay = None
        if isinstance(oracle, OverlayOracle):
            overlay = oracle.overlay
            oracle = oracle.index
        if not isinstance(oracle, HierarchyIndex):
            return None
        if oracle.graph is not self.frn.graph:
            return None
        if overlay is None and callable(getattr(oracle, "heuristic", None)):
            return None
        kern = self._flat_kernel_cache
        if (
            kern is None
            or kern.index is not oracle
            or kern.overlay is not overlay
            or kern.version != oracle.label_version
            or (
                overlay is None
                and kern.graph_version != self.frn.graph.mutation_version
            )
        ):
            kern = FlatQueryKernel(oracle, self.frn, overlay=overlay)
            self._flat_kernel_cache = kern
        elif not kern.is_current():
            kern.refresh_overlay()
        return kern

    def shortest_distance(self, source: int, target: int) -> float:
        """``SPDis`` via the oracle, or A*/Dijkstra when index-free."""
        if self.oracle is not None:
            kern = self._flat_kernel()
            if kern is not None:
                return kern.distance(source, target)
            return self.oracle.distance(source, target)
        heuristic = heuristic_for(self.frn.graph, None, target)
        _, dist = astar_path(self.frn.graph, source, target, heuristic)
        return dist

    def distance(self, u: int, v: int) -> float:
        """Shortest spatial distance — the engine-protocol spelling."""
        return self.shortest_distance(u, v)

    @contextlib.contextmanager
    def kernel_override(self, kernel: str | None):
        """Temporarily force a kernel mode; ``None`` leaves it untouched.

        ``_flat_kernel()`` re-reads ``self.kernel`` on every call, so the
        swap takes effect immediately and the cached kernel survives for
        when the original mode returns.
        """
        if kernel is None:
            yield self
            return
        if kernel not in KERNEL_MODES:
            raise QueryError(
                f"kernel must be one of {KERNEL_MODES}, got {kernel!r}"
            )
        previous = self.kernel
        self.kernel = kernel
        try:
            yield self
        finally:
            self.kernel = previous

    def batch(
        self,
        queries: list[FSPQuery],
        workers: int = 1,
        timeout: float | None = None,
        kernel: str | None = None,
        report=None,
    ):
        """Evaluate many queries via :func:`repro.core.batch.batch_query`.

        The unified engine-protocol batch signature (docs/API.md):
        ``workers`` fans chunks out to the fork pool, ``timeout`` is the
        per-chunk wall-clock budget (``None`` = the pool default), and
        ``kernel`` overrides the kernel mode for the whole batch.
        """
        from repro.core.batch import DEFAULT_CHUNK_TIMEOUT, batch_query

        chunk_timeout = DEFAULT_CHUNK_TIMEOUT if timeout is None else timeout
        with self.kernel_override(kernel):
            return batch_query(
                self,
                queries,
                workers=workers,
                chunk_timeout=chunk_timeout,
                report=report,
            )

    @property
    def flow_engine(self) -> "FlowAwareEngine":
        """The underlying flow-aware engine (itself; protocol accessor)."""
        return self

    # ------------------------------------------------------------------
    # candidate collection
    # ------------------------------------------------------------------
    def _collect_eager(
        self,
        source: int,
        target: int,
        max_distance: float,
        flow_vector: np.ndarray,
    ) -> tuple[list[list[int]], list[float], list[float], bool, bool]:
        """Full (capped) enumeration — FAHL-O / baselines / exhaustive."""
        if self.exhaustive:
            candidates = enumerate_all_paths_within(
                self.frn.graph, source, target, max_distance
            )
        else:
            candidates = generate_candidates(
                self.frn.graph,
                source,
                target,
                max_distance,
                oracle=self.oracle,
                max_candidates=self.max_candidates,
            )
        flows = [path_flow(flow_vector, path) for path in candidates.paths]
        return candidates.paths, candidates.distances, flows, candidates.truncated, False

    def _collect_lazy(
        self,
        source: int,
        target: int,
        spdis: float,
        max_distance: float,
        flow_vector: np.ndarray,
    ) -> tuple[list[list[int]], list[float], list[float], bool, bool]:
        """Lazy enumeration with the score-dominance stop (FAHL-W).

        Candidates arrive in non-decreasing distance; enumeration stops as
        soon as the next candidate's ``α·PDis'`` term alone exceeds the
        best score over the already-seen set (under the seen flow anchors).
        """
        graph = self.frn.graph
        heuristic = heuristic_for(graph, self.oracle, target)
        dist_range = max_distance - spdis
        paths: list[list[int]] = []
        distances: list[float] = []
        flows: list[float] = []
        truncated = False
        early_stopped = False

        def best_score() -> float:
            flow_min = min(flows)
            flow_max = max(flows)
            flow_range = flow_max - flow_min
            best = math.inf
            for dist, flow in zip(distances, flows):
                d_term = (dist - spdis) / dist_range if dist_range > 0 else 0.0
                f_term = (flow - flow_min) / flow_range if flow_range > 0 else 0.0
                score = self.alpha * d_term + (1.0 - self.alpha) * f_term
                if score < best:
                    best = score
            return best

        for path, dist in iter_shortest_paths(
            graph, source, target, heuristic, max_distance=max_distance
        ):
            if len(paths) == self.max_candidates:
                truncated = True
                break
            if len(paths) >= self.min_candidates:
                d_term = (dist - spdis) / dist_range if dist_range > 0 else 0.0
                if self.alpha * d_term > best_score():
                    early_stopped = True
                    break
            paths.append(path)
            distances.append(dist)
            flows.append(path_flow(flow_vector, path))
        return paths, distances, flows, truncated, early_stopped

    # ------------------------------------------------------------------
    def query(self, query: FSPQuery) -> FSPResult:
        """Answer one FSPQ query (Alg. 5), recording telemetry when on.

        With the metrics registry disabled and no tracer installed this is
        a single branch on top of :meth:`_query_impl` — the overhead
        budget is enforced by ``tests/test_obs_overhead.py``.
        """
        registry = obs.get_registry()
        if not registry.enabled and obs.get_tracer() is None:
            return self._query_impl(query)
        start = time.perf_counter()
        with obs.trace(
            "fpsps.query",
            src=query.source,
            dst=query.target,
            t=query.timestep,
            pruning=self.pruning,
        ):
            result = self._query_impl(query)
        elapsed = time.perf_counter() - start
        if registry.enabled:
            registry.histogram(
                "repro_query_seconds", "FSPQ query latency"
            ).observe(elapsed, pruning=self.pruning)
            registry.counter(
                "repro_queries_total", "FSPQ queries evaluated"
            ).inc(pruning=self.pruning)
            registry.counter(
                "repro_query_candidates_total", "candidate paths enumerated"
            ).inc(result.num_candidates)
            if self.pruning != "none":
                # every enumerated candidate is evaluated against the flow
                # bound exactly once in the scoring loop, so the bound-eval
                # counter is the pruning-rate denominator of the report.
                registry.counter(
                    "repro_query_bound_evals_total",
                    "candidates evaluated against the flow pruning bounds",
                ).inc(result.num_candidates, pruning=self.pruning)
                registry.counter(
                    "repro_query_pruned_total",
                    "candidates skipped by the flow pruning bounds",
                ).inc(result.num_pruned, pruning=self.pruning)
            if result.early_stopped:
                registry.counter(
                    "repro_query_early_stops_total",
                    "lazy enumerations ended by the score-dominance stop",
                ).inc()
            if result.truncated:
                registry.counter(
                    "repro_query_truncated_total",
                    "enumerations that hit the candidate cap",
                ).inc()
        return result

    def explain(self, source: int, target: int, timestep: int = 0):
        """EXPLAIN one query: run it for real and report what it did.

        Returns a :class:`repro.obs.QueryExplain` whose answer fields are
        **bit-identical** to :meth:`query` — the evaluation goes through
        the exact same :meth:`_query_impl`, under a private capture
        registry that harvests the label/pruning counters.  A diagnostic
        entry point: it briefly swaps the process registry, so it is not
        meant for the concurrent hot path.
        """
        query = FSPQuery(source, target, timestep).validated(
            self.frn.num_vertices, self.frn.num_timesteps
        )
        stages: dict[str, float] = {}
        capture = obs.MetricsRegistry(enabled=True)
        previous = obs.set_registry(capture)
        t_total = time.perf_counter()
        try:
            kern = self._flat_kernel()
            kern_before = dict(kern.stats) if kern is not None else None
            # probe SPDis separately so the heuristic-table/oracle work is
            # attributed to its own stage; the evaluation below hits the
            # warm caches and times enumeration + scoring alone
            t0 = time.perf_counter()
            if source != target:
                self.shortest_distance(source, target)
            stages["spdis"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            result = self._query_impl(query)
            stages["evaluate"] = time.perf_counter() - t0
        finally:
            obs.set_registry(previous)
        stages["total"] = time.perf_counter() - t_total
        snapshot = capture.snapshot()

        oracle = self.oracle
        overlay = None
        if isinstance(oracle, OverlayOracle):
            overlay = oracle.overlay
            oracle = oracle.index
        hub_cutset_size = None
        label_src = label_dst = None
        if isinstance(oracle, HierarchyIndex):
            hub_cutset_size = (
                int(oracle.hub_cutset(source, target).size)
                if source != target
                else 0
            )
            label_src = int(len(oracle.labels[source]))
            label_dst = int(len(oracle.labels[target]))
        overlay_edges = len(overlay) if overlay is not None else 0

        spur = {"astar_runs": 0, "spur_memo_hits": 0, "spur_skips": 0,
                "heuristic_builds": 0}
        if kern is not None:
            for key in spur:
                spur[key] = kern.stats[key] - kern_before[key]
        ctx = obs.current_context()

        return obs.QueryExplain(
            source=source,
            target=target,
            timestep=timestep,
            distance=result.distance,
            flow=result.flow,
            score=result.score,
            shortest_distance=result.shortest_distance,
            path=result.path,
            engine="flow",
            kernel="flat" if kern is not None else "scalar",
            pruning=self.pruning,
            num_candidates=result.num_candidates,
            num_pruned=result.num_pruned,
            bound_evals=(
                result.num_candidates if self.pruning != "none" else 0
            ),
            bound_prunes=result.num_pruned,
            truncated=result.truncated,
            early_stopped=result.early_stopped,
            hub_cutset_size=hub_cutset_size,
            label_entries_source=label_src,
            label_entries_target=label_dst,
            labels_scanned=(
                _counter_total(snapshot, "repro_label_entries_scanned_total")
                + _counter_total(snapshot, "repro_label_gather_entries_total")
            ),
            spur_searches=spur["astar_runs"],
            spur_memo_hits=spur["spur_memo_hits"],
            spur_skips=spur["spur_skips"],
            heuristic_builds=spur["heuristic_builds"],
            provenance="overlay" if overlay_edges else "stable",
            overlay_edges=overlay_edges,
            stage_seconds=stages,
            trace_id=ctx.trace_id if ctx is not None else None,
            request_id=ctx.request_id if ctx is not None else None,
        )

    def _query_impl(self, query: FSPQuery) -> FSPResult:
        """The uninstrumented Alg. 5 evaluation."""
        frn = self.frn
        query.validated(frn.num_vertices, frn.num_timesteps)
        source, target, t = query.source, query.target, query.timestep
        flow_vector = self._flow_at(t)

        if source == target:
            return FSPResult(
                path=(source,),
                distance=0.0,
                flow=float(flow_vector[source]),
                score=0.0,
                shortest_distance=0.0,
                num_candidates=1,
                num_pruned=0,
                truncated=False,
            )

        kern = self._flat_kernel()
        if kern is not None:
            return self._query_flat(kern, source, target, flow_vector)

        spdis = self.shortest_distance(source, target)
        if not math.isfinite(spdis):
            raise QueryError(f"vertices {source} and {target} are disconnected")
        max_distance = self.eta_u * spdis

        # only lemma4 (FAHL-W) uses the lazy stop: "adaptive" stays a
        # provably lossless scoring-only prune, so it enumerates eagerly.
        lazy = self.pruning == "lemma4" and not self.exhaustive
        if lazy:
            paths, distances, flows, truncated, early_stopped = self._collect_lazy(
                source, target, spdis, max_distance, flow_vector
            )
        else:
            paths, distances, flows, truncated, early_stopped = self._collect_eager(
                source, target, max_distance, flow_vector
            )
        if not paths:
            raise QueryError(
                f"no candidate paths between {source} and {target} "
                f"within MCPDis={max_distance}"
            )

        context = NormalizationContext(
            dist_min=spdis,
            dist_max=max_distance,
            flow_min=min(flows),
            flow_max=max(flows),
        )
        bounds = None
        if self.pruning == "lemma4":
            bounds = lemma4_bounds(
                context.flow_min, context.flow_max, self.alpha, self.eta_u
            )

        best_key: tuple[float, float, float] | None = None
        best_index = -1
        num_pruned = 0
        for i, (dist, flow) in enumerate(zip(distances, flows)):
            if bounds is not None and bounds.prunes(flow):
                num_pruned += 1
                continue
            if (
                self.pruning == "adaptive"
                and best_key is not None
                and flow > adaptive_upper_bound(
                    best_key[0], context.flow_min, context.flow_max, self.alpha
                )
            ):
                num_pruned += 1
                continue
            score = self.alpha * context.normalize_distance(dist) + (
                1.0 - self.alpha
            ) * context.normalize_flow(flow)
            key = (score, dist, flow)
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        if best_key is None:
            # every candidate was pruned (possible under lemma4); fall back
            # to the spatially shortest candidate, which is always index 0.
            best_index = 0
            dist, flow = distances[0], flows[0]
            score = self.alpha * context.normalize_distance(dist) + (
                1.0 - self.alpha
            ) * context.normalize_flow(flow)
            best_key = (score, dist, flow)

        return FSPResult(
            path=tuple(paths[best_index]),
            distance=distances[best_index],
            flow=flows[best_index],
            score=best_key[0],
            shortest_distance=spdis,
            num_candidates=len(paths),
            num_pruned=num_pruned,
            truncated=truncated,
            early_stopped=early_stopped,
        )

    def _query_flat(
        self,
        kern: FlatQueryKernel,
        source: int,
        target: int,
        flow_vector: np.ndarray,
    ) -> FSPResult:
        """Alg. 5 through the flat kernel: vectorised bounds and scoring.

        Candidate enumeration is bit-identical to the scalar collectors
        (the kernel's contract); pruning and scoring then run as whole
        candidate-vector operations whose element-wise arithmetic matches
        the scalar loop exactly — same IEEE operations, same comparisons,
        same tie-breaking (stable lexsort picks the first index with the
        minimal ``(score, distance, flow)`` key, which is precisely what
        the sequential strict-less update keeps).  Returns the same
        :class:`FSPResult` the scalar path would.
        """
        registry = obs.get_registry()
        before = dict(kern.stats) if registry.enabled else None
        spdis = kern.h_to(target)[source]
        if not math.isfinite(spdis):
            raise QueryError(f"vertices {source} and {target} are disconnected")
        max_distance = self.eta_u * spdis
        if self.pruning == "lemma4":
            paths, distances, flows, truncated, early_stopped = kern.collect_lazy(
                source,
                target,
                spdis,
                max_distance,
                flow_vector,
                alpha=self.alpha,
                max_candidates=self.max_candidates,
                min_candidates=self.min_candidates,
            )
        else:
            paths, distances, flows, truncated, early_stopped = kern.collect_eager(
                source, target, max_distance, flow_vector, self.max_candidates
            )
        if before is not None:
            for key, (metric, help_text) in _KERNEL_COUNTERS.items():
                delta = kern.stats[key] - before[key]
                if delta:
                    registry.counter(metric, help_text).inc(delta)
        if not paths:
            raise QueryError(
                f"no candidate paths between {source} and {target} "
                f"within MCPDis={max_distance}"
            )

        flow_min = min(flows)
        flow_max = max(flows)
        dists = np.asarray(distances, dtype=np.float64)
        flows_arr = np.asarray(flows, dtype=np.float64)
        dist_range = max_distance - spdis
        flow_range = flow_max - flow_min
        if dist_range > 0:
            d_terms = (dists - spdis) / dist_range
        else:
            d_terms = np.zeros_like(dists)
        if flow_range > 0:
            f_terms = (flows_arr - flow_min) / flow_range
        else:
            f_terms = np.zeros_like(flows_arr)
        scores = self.alpha * d_terms + (1.0 - self.alpha) * f_terms

        if self.pruning == "lemma4":
            bounds = lemma4_bounds(flow_min, flow_max, self.alpha, self.eta_u)
            pruned = bounds.prunes_many(flows_arr)
        elif self.pruning == "adaptive":
            pruned = adaptive_prune_mask(
                scores, flows_arr, flow_min, flow_max, self.alpha
            )
        else:
            pruned = np.zeros(len(flows), dtype=bool)
        num_pruned = int(pruned.sum())
        alive = np.flatnonzero(~pruned)
        if alive.size:
            order = np.lexsort((flows_arr[alive], dists[alive], scores[alive]))
            best_index = int(alive[order[0]])
        else:
            # every candidate was pruned (possible under lemma4); fall back
            # to the spatially shortest candidate, which is always index 0.
            best_index = 0

        return FSPResult(
            path=tuple(paths[best_index]),
            distance=distances[best_index],
            flow=flows[best_index],
            score=float(scores[best_index]),
            shortest_distance=spdis,
            num_candidates=len(paths),
            num_pruned=num_pruned,
            truncated=truncated,
            early_stopped=early_stopped,
        )
