"""Delta overlay: exact ``stable ⊕ overlay`` serving under continuous updates.

The paper's ILU repairs labels *in place*, which blocks queries for the
duration of the repair.  Following the stable/delta split of *Stable Tree
Labelling for Accelerating Distance Queries on Dynamic Road Networks*
(PAPERS.md), this module keeps the labelling **stable** (built for the
weights at the last consolidation) and absorbs accepted weight updates into
a small :class:`DeltaOverlay`:

* :meth:`DeltaOverlay.absorb` applies the new weight to the live graph
  immediately and records the edge together with the *stable* weight the
  labels still assume.  Both endpoints become **overlay hubs**, each
  carrying an exact one-to-all distance vector on the *current* graph
  (a fresh Dijkstra for a new hub; incremental decrease-relaxation /
  affected-row recomputation for subsequent changes).

* :class:`OverlayOracle` answers distance queries exactly from
  ``stable ⊕ overlay``.  Let ``D`` be the overlay edge set, ``d0`` the
  stable label distance and ``a(s, t)`` the current-graph distance
  *avoiding* every edge of ``D``.  Because weights off ``D`` are unchanged,

  .. math::  d_{cur}(s, t) = \\min\\big(a(s, t),\\;
             \\min_{x \\in hubs} dist_x[s] + dist_x[t]\\big)

  — the current-optimal path either avoids ``D`` entirely (first term,
  where current cost equals stable cost) or passes through an endpoint of
  a ``D``-edge (second term, tight because subpaths of shortest paths are
  shortest).  Point queries avoid the Dijkstra in the first term with a
  **certification** test over the labels alone: if no *stable* shortest
  path can use any ``D``-edge (``d0(s,u) + w0(u,v) + d0(v,t) > d0(s,t)``
  for every edge, both orientations, with a small conservative slack),
  then ``a = d0`` and the answer is ``min(d0, hub term)``.  Uncertified
  pairs fall back to an A* on the current graph under the admissible
  slack heuristic ``max(0, d0(v,t) - Σ decreases)``.  One-to-all tables
  (the FSPQ kernels' heuristics) use the avoid-Dijkstra form directly.

* :class:`ConsolidationTask` folds the overlay into a **back buffer** —
  a :meth:`~repro.labeling.hierarchy.HierarchyIndex.clone` repaired with
  the ordinary ILU/ISU/GSU maintenance — in small cooperative steps that
  interleave with queries, then swaps it in atomically (plain attribute
  assignments, no fault checkpoint in between) and rebases the overlay.
  The back buffer reads weights through a snapshot view, so updates
  absorbed *during* consolidation cannot contaminate the repair; they
  simply stay in the overlay across the swap.
"""

from __future__ import annotations

import heapq
import math
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from repro import obs
from repro.baselines.dijkstra import dijkstra_distances
from repro.core.maintenance import (
    _checkpoint,
    apply_flow_update,
    apply_weight_update,
)
from repro.errors import EdgeNotFoundError, GraphError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.labeling.hierarchy import HierarchyIndex
from repro.paths.astar_search import AdmissibleHeuristic, OracleHeuristic, astar_path

__all__ = ["DeltaOverlay", "OverlayOracle", "ConsolidationTask"]

#: relative slack under which a stable shortest path is *assumed* to touch an
#: overlay edge (forcing the safe fallback).  Only near-ties are affected,
#: and only in the conservative direction; with integer weights (the paper's
#: road networks, and the arena's quantised fast path) certification is exact.
_CERT_SLACK = 1e-9


def _edge_key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


@dataclass
class OverlayEdge:
    """One absorbed weight change: stable (label) weight vs. live weight."""

    u: int
    v: int
    stable: float
    current: float


class DeltaOverlay:
    """Accepted-but-unconsolidated weight updates over a stable labelling.

    Parameters
    ----------
    graph:
        The live :class:`RoadNetwork` (shared with the serving index).
    capacity:
        Soft bound on distinct changed edges; :attr:`is_full` tells the
        serving layer it should consolidate.  Absorbs are never refused —
        exactness does not depend on the bound, only query overhead does.
    """

    def __init__(self, graph: RoadNetwork, capacity: int = 64) -> None:
        if capacity < 1:
            raise GraphError(f"overlay capacity must be >= 1, got {capacity}")
        self.graph = graph
        self.capacity = int(capacity)
        self.edges: dict[tuple[int, int], OverlayEdge] = {}
        self._hub_ids: list[int] = []
        self._hub_rows: dict[int, np.ndarray] = {}
        self._matrix: np.ndarray | None = None
        #: bumped by every absorb and rebase; kernels/caches key off it
        self.version = 0
        self.absorbed_total = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.edges)

    @property
    def is_empty(self) -> bool:
        """No pending correction — stable labels are exact on their own."""
        return not self.edges

    @property
    def is_full(self) -> bool:
        return len(self.edges) >= self.capacity

    @property
    def num_hubs(self) -> int:
        return len(self._hub_ids)

    @property
    def total_decrease(self) -> float:
        """Total weight-decrease mass — the admissible A* slack.

        A current shortest path is simple, so it uses each decreased edge
        at most once: its stable cost exceeds its current cost by at most
        this sum, making ``d0(v, t) - total_decrease`` a lower bound on
        the current distance.
        """
        return sum(
            e.stable - e.current for e in self.edges.values() if e.current < e.stable
        )

    def nbytes(self) -> int:
        return sum(row.nbytes for row in self._hub_rows.values())

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def absorb(self, u: int, v: int, new_weight: float) -> bool:
        """Apply ``(u, v) -> new_weight`` to the live graph and record it.

        O(1) on the graph plus incremental hub-vector repair; the labels
        are untouched (that is the whole point).  Returns ``False`` when
        the weight is unchanged (no version bump).
        """
        try:
            new_weight = float(new_weight)
        except (TypeError, ValueError) as exc:
            raise GraphError(f"edge weight must be a number, got {new_weight!r}") from exc
        if not math.isfinite(new_weight):
            raise GraphError(f"edge weight must be finite, got {new_weight!r}")
        if new_weight <= 0:
            raise GraphError(f"edge weight must be positive, got {new_weight}")
        graph = self.graph
        if not graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        old_weight = graph.weight(u, v)
        if new_weight == old_weight:
            return False
        start = time.perf_counter()
        lo, hi = _edge_key(u, v)
        graph.set_weight(u, v, new_weight)
        entry = self.edges.get((lo, hi))
        if entry is None:
            self.edges[(lo, hi)] = OverlayEdge(lo, hi, old_weight, new_weight)
        else:
            # keep the entry even when the edge returns to its stable weight:
            # a concurrent consolidation may already have folded a different
            # value for it, and the rebase bookkeeping needs the record.  A
            # ``current == stable`` entry is dropped at the next rebase and
            # is harmless meanwhile (the hub term still covers its paths).
            entry.current = new_weight
        # repair rows that existed before this change, then add new hubs
        # (computed on the already-updated graph, hence exact as-is)
        self._repair_rows(lo, hi, old_weight, new_weight)
        self._ensure_hub(lo)
        self._ensure_hub(hi)
        self._matrix = None
        self.version += 1
        self.absorbed_total += 1
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_overlay_absorbed_total", "weight updates absorbed by the overlay"
            ).inc()
            registry.gauge(
                "repro_overlay_edges", "edges pending consolidation"
            ).set(len(self.edges))
            registry.gauge(
                "repro_overlay_hubs", "overlay hub vectors held"
            ).set(len(self._hub_ids))
            registry.histogram(
                "repro_overlay_ingest_seconds", "overlay absorb latency"
            ).observe(time.perf_counter() - start)
        return True

    def _ensure_hub(self, x: int) -> None:
        if x not in self._hub_rows:
            self._hub_rows[x] = dijkstra_distances(self.graph, x)
            self._hub_ids.append(x)

    def _repair_rows(self, u: int, v: int, old_w: float, new_w: float) -> None:
        """Keep every hub vector exact after ``(u, v)``: ``old_w -> new_w``."""
        if new_w < old_w:
            for row in self._hub_rows.values():
                self._relax_decrease(row, u, v, new_w)
            return
        # increase: a hub's vector can only change if its shortest-path tree
        # could route through the edge, i.e. the old tightness held
        for x in list(self._hub_rows):
            row = self._hub_rows[x]
            if row[u] + old_w == row[v] or row[v] + old_w == row[u]:
                self._hub_rows[x] = dijkstra_distances(self.graph, x)

    def _relax_decrease(self, row: np.ndarray, u: int, v: int, w: float) -> None:
        """Seeded Dijkstra relaxation after a weight decrease (exact)."""
        heap: list[tuple[float, int]] = []
        du, dv = float(row[u]), float(row[v])
        if du + w < dv:
            row[v] = du + w
            heap.append((du + w, v))
        if dv + w < du:
            row[u] = dv + w
            heap.append((dv + w, u))
        graph = self.graph
        while heap:
            d, a = heapq.heappop(heap)
            if d > row[a]:
                continue
            for b, wab in graph.neighbor_items(a):
                nd = d + wab
                if nd < row[b]:
                    row[b] = nd
                    heapq.heappush(heap, (nd, b))

    # ------------------------------------------------------------------
    # query terms
    # ------------------------------------------------------------------
    def _hub_matrix(self) -> np.ndarray | None:
        if not self._hub_ids:
            return None
        if self._matrix is None:
            self._matrix = np.vstack([self._hub_rows[x] for x in self._hub_ids])
        return self._matrix

    def hub_term(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """``min_x dist_x[s] + dist_x[t]`` per aligned pair (inf when hub-less).

        Always an upper bound on the current distance (each term is a valid
        concatenation of two current shortest paths) and tight whenever the
        current-optimal path crosses an overlay edge.
        """
        matrix = self._hub_matrix()
        if matrix is None:
            return np.full(len(sources), math.inf)
        return (matrix[:, sources] + matrix[:, targets]).min(axis=0)

    def avoid_distances(self, target: int) -> np.ndarray:
        """Current-graph one-to-all distances to ``target`` avoiding ``D``.

        Off the overlay the current weights *are* the stable weights, so
        this equals the stable distance restricted to ``D``-free paths —
        the ``a(·, target)`` term of the exactness identity.
        """
        graph = self.graph
        n = graph.num_vertices
        if not 0 <= target < n:
            raise QueryError(f"avoid_distances query on unknown vertex {target}")
        banned = self.edges
        dist = np.full(n, math.inf)
        dist[target] = 0.0
        heap: list[tuple[float, int]] = [(0.0, target)]
        while heap:
            d, a = heapq.heappop(heap)
            if d > dist[a]:
                continue
            for b, w in graph.neighbor_items(a):
                if (_edge_key(a, b)) in banned:
                    continue
                nd = d + w
                if nd < dist[b]:
                    dist[b] = nd
                    heapq.heappush(heap, (nd, b))
        return dist

    def table_to(self, target: int) -> np.ndarray:
        """Exact *current* one-to-all distance table toward ``target``."""
        table = self.avoid_distances(target)
        matrix = self._hub_matrix()
        if matrix is not None:
            np.minimum(table, (matrix + matrix[:, target][:, None]).min(axis=0),
                       out=table)
        return table

    # ------------------------------------------------------------------
    # consolidation rebase
    # ------------------------------------------------------------------
    def prepare_rebase(
        self, consolidated: dict[tuple[int, int], float]
    ) -> tuple[dict, list, dict]:
        """Overlay state as of *after* a swap that folded ``consolidated``.

        Pure computation — commit separately with :meth:`commit_rebase`
        (plain assignments) so the swap has no failure window.
        """
        new_edges: dict[tuple[int, int], OverlayEdge] = {}
        for key, e in self.edges.items():
            stable = consolidated.get(key, e.stable)
            if e.current != stable:
                new_edges[key] = OverlayEdge(e.u, e.v, stable, e.current)
        keep: set[int] = set()
        for lo, hi in new_edges:
            keep.add(lo)
            keep.add(hi)
        hub_ids = [x for x in self._hub_ids if x in keep]
        hub_rows = {x: self._hub_rows[x] for x in hub_ids}
        return new_edges, hub_ids, hub_rows

    def commit_rebase(self, state: tuple[dict, list, dict]) -> None:
        """Atomically install a :meth:`prepare_rebase` result."""
        self.edges, self._hub_ids, self._hub_rows = state
        self._matrix = None
        self.version += 1
        registry = obs.get_registry()
        if registry.enabled:
            registry.gauge(
                "repro_overlay_edges", "edges pending consolidation"
            ).set(len(self.edges))
            registry.gauge(
                "repro_overlay_hubs", "overlay hub vectors held"
            ).set(len(self._hub_ids))

    def stats(self) -> dict:
        return {
            "edges": len(self.edges),
            "hubs": len(self._hub_ids),
            "version": self.version,
            "absorbed_total": self.absorbed_total,
            "total_decrease": self.total_decrease,
            "nbytes": self.nbytes(),
        }


class _TableHeuristic(AdmissibleHeuristic):
    """Exact (hence admissible and consistent) precomputed distance table."""

    def __init__(self, table: np.ndarray) -> None:
        self._table = table

    def estimate(self, vertex: int) -> float:
        return float(self._table[vertex])


class _SlackHeuristic(AdmissibleHeuristic):
    """``max(0, d0(v, t) - Σ decreases)`` — admissible on the current graph."""

    def __init__(self, index: HierarchyIndex, target: int, slack: float) -> None:
        self._index = index
        self._target = target
        self._slack = slack
        self._cache: dict[int, float] = {}

    def estimate(self, vertex: int) -> float:
        cached = self._cache.get(vertex)
        if cached is None:
            cached = max(0.0, self._index.distance(vertex, self._target) - self._slack)
            self._cache[vertex] = cached
        return cached


class OverlayOracle:
    """Exact distance oracle over ``stable labels ⊕ delta overlay``.

    Drop-in for a :class:`HierarchyIndex` wherever the serving layers use
    one as an oracle (``distance`` / ``distance_many`` / ``distances_to`` /
    ``path``), plus the ``heuristic(target)`` factory that
    :func:`repro.paths.candidates.heuristic_for` picks up — so the scalar
    FSPQ path and the flat kernel read the *same* exact heuristic tables.
    With an empty overlay every call delegates straight to the index
    (zero added work, bit-identical answers).
    """

    _TABLE_CACHE = 8

    def __init__(self, index: HierarchyIndex, overlay: DeltaOverlay) -> None:
        if index.graph is not overlay.graph:
            raise QueryError("overlay and index must share one live graph")
        self.index = index
        self.overlay = overlay
        self._tables: OrderedDict[int, np.ndarray] = OrderedDict()
        self._tables_key: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> RoadNetwork:
        return self.index.graph

    @property
    def label_version(self) -> int:
        return self.index.label_version

    def _slack_of(self, d0: float) -> float:
        return _CERT_SLACK * (1.0 + abs(d0))

    # ------------------------------------------------------------------
    # heuristic tables
    # ------------------------------------------------------------------
    def heuristic_table(self, target: int) -> np.ndarray:
        """Exact current one-to-all distances toward ``target`` (LRU-cached)."""
        if self.overlay.is_empty:
            return self.index.distances_to(target)
        key = (self.overlay.version, self.index.label_version)
        if key != self._tables_key:
            self._tables.clear()
            self._tables_key = key
        table = self._tables.get(target)
        if table is None:
            table = self.overlay.table_to(target)
            self._tables[target] = table
            if len(self._tables) > self._TABLE_CACHE:
                self._tables.popitem(last=False)
        else:
            self._tables.move_to_end(target)
        return table

    def heuristic(self, target: int) -> AdmissibleHeuristic:
        """A*-heuristic factory (:func:`heuristic_for` contract).

        Empty overlay: the plain :class:`OracleHeuristic` over the index —
        identical values to the flat kernel's ``distances_to`` table, so
        scalar and flat candidate streams stay bit-identical.  Non-empty:
        the exact overlay table, same object the flat kernel uses.
        """
        if self.overlay.is_empty:
            return OracleHeuristic(self.index, target)
        return _TableHeuristic(self.heuristic_table(target))

    def distances_to(self, target: int) -> np.ndarray:
        return self.heuristic_table(target)

    # ------------------------------------------------------------------
    # point / batched distances
    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> float:
        """Exact current shortest distance ``d_cur(u, v)``."""
        if self.overlay.is_empty:
            return self.index.distance(u, v)
        n = self.graph.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise QueryError(f"distance query on unknown vertices ({u}, {v})")
        if u == v:
            return 0.0
        if self._tables_key == (self.overlay.version, self.index.label_version):
            table = self._tables.get(v)
            if table is not None:
                return float(table[u])
            table = self._tables.get(u)
            if table is not None:
                return float(table[v])
        return float(self.distance_many([u], [v])[0])

    def distance_many(self, sources, targets) -> np.ndarray:
        """Vectorised :meth:`distance` (certification + hub term + fallback)."""
        if self.overlay.is_empty:
            return self.index.distance_many(sources, targets)
        us = np.asarray(sources, dtype=np.int64)
        vs = np.asarray(targets, dtype=np.int64)
        if us.size == 0:
            return np.empty(0, dtype=np.float64)
        index = self.index
        d0 = index.distance_many(us, vs)
        edges = list(self.overlay.edges.values())
        m = len(edges)
        k = int(us.size)
        a = np.fromiter((e.u for e in edges), dtype=np.int64, count=m)
        b = np.fromiter((e.v for e in edges), dtype=np.int64, count=m)
        w0 = np.fromiter((e.stable for e in edges), dtype=np.float64, count=m)
        rep_s = np.repeat(us, m)
        rep_t = np.repeat(vs, m)
        tile_a = np.tile(a, k)
        tile_b = np.tile(b, k)
        d_sa = index.distance_many(rep_s, tile_a).reshape(k, m)
        d_bt = index.distance_many(tile_b, rep_t).reshape(k, m)
        d_sb = index.distance_many(rep_s, tile_b).reshape(k, m)
        d_at = index.distance_many(tile_a, rep_t).reshape(k, m)
        via = np.minimum(d_sa + w0 + d_bt, d_sb + w0 + d_at).min(axis=1)
        certified = via > d0 + _CERT_SLACK * (1.0 + np.abs(d0))
        out = np.minimum(d0, self.overlay.hub_term(us, vs))
        uncertified = np.flatnonzero(~certified)
        for i in uncertified:
            out[i] = self._fallback(int(us[i]), int(vs[i]))
        if uncertified.size:
            obs.counter(
                "repro_overlay_uncertified_fallbacks_total",
                "pairs a stable shortest path may cross the overlay on "
                "(answered by A* on the current graph)",
            ).inc(int(uncertified.size))
        return out

    def _fallback(self, u: int, v: int) -> float:
        """Exact answer for an uncertified pair: A* on the current graph."""
        if u == v:
            return 0.0
        heuristic = _SlackHeuristic(self.index, v, self.overlay.total_decrease)
        _, dist = astar_path(self.graph, u, v, heuristic)
        return dist

    # ------------------------------------------------------------------
    def path(self, u: int, v: int) -> list[int]:
        """A concrete shortest path on the *current* graph."""
        if self.overlay.is_empty:
            return self.index.path(u, v)
        n = self.graph.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise QueryError(f"path query on unknown vertices ({u}, {v})")
        if u == v:
            return [u]
        path, _ = astar_path(
            self.graph, u, v, _TableHeuristic(self.heuristic_table(v))
        )
        return path

    def __repr__(self) -> str:
        return (
            f"OverlayOracle(edges={len(self.overlay)}, "
            f"hubs={self.overlay.num_hubs}, version={self.overlay.version})"
        )


# ----------------------------------------------------------------------
# consolidation
# ----------------------------------------------------------------------
class _SnapshotGraph:
    """Weight-snapshot view of the live graph for the back buffer.

    The consolidation clone shares the live :class:`RoadNetwork`, whose
    weights have already moved on (the overlay absorbed them).  ILU's
    shortcut recompute reads *base* weights from the graph, so the back
    buffer must see each edge at the weight its labels were built under
    until its own repair step runs — and must never see updates absorbed
    mid-consolidation.  This view overlays ``overrides`` (initially every
    overlay edge pinned at its stable weight) on the live graph; ILU's
    ``set_weight`` writes the override, never the live graph.
    """

    def __init__(self, base: RoadNetwork, overrides: dict[tuple[int, int], float]):
        self._base = base
        self._overrides = overrides
        self._touched: dict[int, dict[int, float]] = {}
        for (lo, hi), w in overrides.items():
            self._touched.setdefault(lo, {})[hi] = w
            self._touched.setdefault(hi, {})[lo] = w

    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices

    @property
    def num_edges(self) -> int:
        return self._base.num_edges

    @property
    def coordinates(self):
        return self._base.coordinates

    def vertices(self) -> range:
        return self._base.vertices()

    def __len__(self) -> int:
        return self._base.num_vertices

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._base

    def has_edge(self, u: int, v: int) -> bool:
        return self._base.has_edge(u, v)

    def weight(self, u: int, v: int) -> float:
        w = self._overrides.get(_edge_key(u, v))
        return self._base.weight(u, v) if w is None else w

    def set_weight(self, u: int, v: int, weight: float) -> None:
        if not self._base.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        lo, hi = _edge_key(u, v)
        weight = float(weight)
        self._overrides[(lo, hi)] = weight
        self._touched.setdefault(lo, {})[hi] = weight
        self._touched.setdefault(hi, {})[lo] = weight

    def pin(self, u: int, v: int, weight: float) -> None:
        """Pin an edge absorbed mid-consolidation at its stable weight."""
        lo, hi = _edge_key(u, v)
        if (lo, hi) not in self._overrides:
            self.set_weight(u, v, weight)

    def adjacency(self, vertex: int) -> Mapping[int, float]:
        row = self._base.adjacency(vertex)
        patch = self._touched.get(vertex)
        if not patch:
            return row
        out = dict(row)
        out.update(patch)
        return out

    def neighbor_items(self, vertex: int) -> Iterator[tuple[int, float]]:
        return iter(self.adjacency(vertex).items())

    def neighbors(self, vertex: int):
        return self._base.neighbors(vertex)

    def degree(self, vertex: int) -> int:
        return self._base.degree(vertex)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        for u, v, _ in self._base.edges():
            yield u, v, self.weight(u, v)

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())


class ConsolidationTask:
    """Cooperative background fold of the overlay into a back buffer.

    Drive with :meth:`step` (one bounded unit of work per call — the
    serving loop interleaves steps with queries) or :meth:`run` (to
    completion).  Stages, each guarded by a ``consolidate:*`` fault
    checkpoint from :data:`repro.core.maintenance.FAULT_POINTS`:

    1. **clone** — deep-copy the serving index (graph shared through the
       snapshot view above).
    2. **weights** — one ILU per overlay edge on the clone, stable →
       current weight, non-transactional (a failure discards the whole
       clone; the serving index was never touched).
    3. **flows** — fold queued flow updates with ISU/GSU on the clone.
    4. **prepare** — compute the post-swap overlay state.
    5. **commit** — plain attribute assignments: live graph back onto the
       clone, ``on_commit(back)`` (the owner swaps its index reference and
       bumps epochs), overlay rebase.  No fault checkpoint fires between
       the first assignment and ``consolidate:swap-committed``, so the
       swap is atomic under the chaos harness, and queries — which run
       strictly between steps — observe either the old pair or the new
       pair, never a mix.
    """

    def __init__(
        self,
        index: HierarchyIndex,
        overlay: DeltaOverlay,
        flow_updates: dict[int, float] | None = None,
        flow_method: str = "isu",
        on_commit: Callable[[HierarchyIndex], None] | None = None,
    ) -> None:
        self.index = index
        self.overlay = overlay
        self.flow_method = flow_method
        self.on_commit = on_commit
        self.state = "clone"
        self.committed = False
        self.back: HierarchyIndex | None = None
        self.consolidated: dict[tuple[int, int], float] = {}
        self.consolidated_flows: dict[int, float] = {}
        self._view: _SnapshotGraph | None = None
        self._rebase_state: tuple[dict, list, dict] | None = None
        self._prepared_version: int | None = None
        self._pending_edges: deque[tuple[tuple[int, int], float]] = deque()
        has_flows = getattr(index, "flows", None) is not None
        self._pending_flows: deque[tuple[int, float]] = deque(
            sorted((flow_updates or {}).items()) if has_flows else ()
        )
        self.started = time.perf_counter()
        self.steps = 0

    # ------------------------------------------------------------------
    def note_absorb(self, u: int, v: int, stable_weight: float) -> None:
        """Pin an edge absorbed while this task is running.

        The back buffer must keep seeing the weight its labels were built
        under; the edge stays in the overlay across the swap (it is not in
        :attr:`consolidated`), so queries remain exact throughout.
        """
        if self._view is not None and not self.committed:
            self._view.pin(u, v, stable_weight)

    @property
    def done(self) -> bool:
        return self.state == "done"

    def step(self) -> str:
        """Advance one stage-step; returns the state *after* the step."""
        if self.state == "done":
            return self.state
        self.steps += 1
        if self.state == "clone":
            overrides = {key: e.stable for key, e in self.overlay.edges.items()}
            self._pending_edges = deque(
                (key, e.current) for key, e in self.overlay.edges.items()
            )
            back = self.index.clone()
            self._view = _SnapshotGraph(self.index.graph, overrides)
            back.graph = self._view
            self.back = back
            _checkpoint("consolidate:clone-created")
            self.state = "weights"
        elif self.state == "weights":
            if self._pending_edges:
                (lo, hi), target = self._pending_edges.popleft()
                apply_weight_update(self.back, lo, hi, target, transactional=False)
                self.consolidated[(lo, hi)] = target
                _checkpoint("consolidate:weights-folded")
            if not self._pending_edges:
                self.state = "flows"
        elif self.state == "flows":
            if self._pending_flows:
                vertex, flow = self._pending_flows.popleft()
                apply_flow_update(
                    self.back, vertex, flow,
                    method=self.flow_method, transactional=False,
                )
                self.consolidated_flows[vertex] = flow
                _checkpoint("consolidate:flows-folded")
            if not self._pending_flows:
                self.state = "prepare"
        elif self.state == "prepare":
            self._rebase_state = self.overlay.prepare_rebase(self.consolidated)
            self._prepared_version = self.overlay.version
            _checkpoint("consolidate:swap-prepared")
            self.state = "commit"
        elif self.state == "commit":
            if self.overlay.version != self._prepared_version:
                # an absorb landed between prepare and commit: recompute the
                # rebase (still pure, still before any assignment) so the
                # fresh entry survives the swap
                self._rebase_state = self.overlay.prepare_rebase(self.consolidated)
            swap_start = time.perf_counter()
            # the atomic swap: nothing below can raise before the commit
            # checkpoint — attribute/dict assignments only
            self.back.graph = self.index.graph
            if self.on_commit is not None:
                self.on_commit(self.back)
            self.overlay.commit_rebase(self._rebase_state)
            self.committed = True
            self.state = "done"
            registry = obs.get_registry()
            if registry.enabled:
                registry.histogram(
                    "repro_overlay_swap_seconds",
                    "duration of the atomic pointer swap itself",
                ).observe(time.perf_counter() - swap_start)
                registry.histogram(
                    "repro_overlay_consolidation_seconds",
                    "wall time from consolidation start to swap commit",
                ).observe(time.perf_counter() - self.started)
                registry.counter(
                    "repro_overlay_consolidations_total",
                    "background consolidation swaps committed",
                ).inc()
            _checkpoint("consolidate:swap-committed")
        return self.state

    def run(self) -> HierarchyIndex:
        """Drive the task to the committed swap; returns the new index."""
        while self.state != "done":
            self.step()
        return self.back
