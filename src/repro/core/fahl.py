"""FAHL: the Flow-Aware Hierarchical Labeling index (paper Section III).

FAHL is a hierarchical 2-hop labeling whose elimination ordering is the
degree-flow joint ordering of Def. 7: vertices with low predicted flow (and
high degree) are eliminated late and therefore sit near the root of the
tree decomposition, giving them short label arrays and making them cheap
LCA hubs for the flow-aware search.

Construction (Alg. 1) = degree-flow elimination + tree building + the
shared label DP; the shortest spatial distance query (Alg. 2 / Eq. 5) is
inherited from :class:`~repro.labeling.hierarchy.HierarchyIndex`.

The index keeps the inputs it was ordered by (``flows``, ``beta``) so the
maintenance algorithms (Section IV) can re-score vertices when flows
change, and records φ-at-elimination for the Lemma-1 fast path.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import IndexBuildError, IndexStateError
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import require_connected
from repro.labeling.hierarchy import HierarchyIndex
from repro.treedec.elimination import eliminate
from repro.treedec.ordering import degree_flow_importance

__all__ = ["FAHLIndex", "build_fahl"]


class FAHLIndex(HierarchyIndex):
    """Flow-aware hierarchical labeling index (Def. 8 / Alg. 1).

    Parameters
    ----------
    graph:
        The spatial road network.
    flows:
        Per-vertex predicted flow used for the joint ordering — typically
        :meth:`FlowAwareRoadNetwork.total_predicted_flow`, or the
        capacity-based variant of Def. 4 for FAHL+.
    beta:
        Def. 7's flow/degree mixing weight (paper default 0.5).
    """

    def __init__(self, graph: RoadNetwork, flows: np.ndarray, beta: float = 0.5) -> None:
        if graph.num_vertices == 0:
            raise IndexStateError("cannot index an empty graph")
        require_connected(graph, context="FAHL construction")
        flows = np.asarray(flows, dtype=np.float64)
        if flows.shape != (graph.num_vertices,):
            raise IndexBuildError(
                f"flow vector shape {flows.shape} does not match "
                f"{graph.num_vertices} vertices"
            )
        self.beta = float(beta)
        self.flows = flows.copy()
        # normalisation anchors are frozen at construction so a later flow
        # update re-scores only the updated vertex (see normalize_flows).
        self.flow_anchors = (float(flows.min()), float(flows.max()))
        importance = degree_flow_importance(
            graph, self.flows, beta=self.beta, anchors=self.flow_anchors
        )
        with obs.stopwatch(
            metric="repro_build_phase_seconds",
            span="build.elimination",
            phase="elimination",
        ):
            elimination = eliminate(graph, importance)
        super().__init__(graph, elimination)

    def importance_function(self):
        """The Def.-7 importance under the index's *current* flow vector."""
        return degree_flow_importance(
            self.graph, self.flows, beta=self.beta, anchors=self.flow_anchors
        )

    def phi_of(self, vertex: int, degree: int) -> float:
        """Re-score one vertex's φ at a given (elimination-time) degree."""
        return self.importance_function()(vertex, degree)

    @classmethod
    def from_frn(
        cls,
        frn: FlowAwareRoadNetwork,
        beta: float = 0.5,
        use_capacity: bool = False,
        w_c: float = 0.5,
    ) -> "FAHLIndex":
        """Build from an FRN, optionally on capacity-based flow (FAHL+)."""
        if use_capacity:
            flows = frn.total_capacity_flow(w_c=w_c)
        else:
            flows = frn.total_predicted_flow()
        return cls(frn.graph, flows, beta=beta)


def build_fahl(
    frn: FlowAwareRoadNetwork,
    beta: float = 0.5,
    use_capacity: bool = False,
    w_c: float = 0.5,
) -> FAHLIndex:
    """Convenience wrapper for :meth:`FAHLIndex.from_frn`."""
    return FAHLIndex.from_frn(frn, beta=beta, use_capacity=use_capacity, w_c=w_c)
