"""Index maintenance in flow-aware road networks (paper Section IV).

Three algorithms keep a FAHL/H2H index consistent under the two change
types of an FRN:

* **ILU** (:func:`apply_weight_update`, Alg. 4) — an edge *weight* changed.
  The elimination structure is unaffected; the shortcut weights derived from
  the edge are repaired with a rank-ordered worklist, then labels are
  refreshed top-down with change-propagation pruning.  Works on any
  :class:`~repro.labeling.hierarchy.HierarchyIndex` (H2H too, which is how
  the Fig. 9 baseline updates are measured).

* **GSU** (:func:`apply_flow_update` with ``method="gsu"``) — a vertex
  *flow* changed, moving it in the degree-flow joint ordering.  The general
  strategy replays the (unchanged) elimination prefix from the recorded
  step log, re-runs the elimination for every later vertex and rebuilds
  structure + labels: always applicable, provably correct, lots of
  redundant work.

* **ISU** (``method="isu"``, Alg. 3) — re-eliminates only the affected rank
  *window*, then verifies that the elimination frontier after the window
  (edge weights **and** shortcut middles) matches the recorded one.  On a
  match the entire suffix of the old elimination remains valid verbatim and
  is spliced back; labels are refreshed only where bags or ancestor paths
  changed.  On a mismatch ISU falls back to GSU — correctness never depends
  on the window heuristic, because *any* faithfully executed elimination
  order yields exact labels.

All three return statistics (affected labels, strategy used, window) that
the experiment harness reports.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.fahl import FAHLIndex
from repro.errors import EdgeNotFoundError, GraphError, IndexStateError
from repro.labeling.hierarchy import HierarchyIndex
from repro.treedec.elimination import (
    EliminationResult,
    relax_from_bag,
    replay_prefix,
    run_elimination_steps,
)

__all__ = [
    "LabelUpdateStats",
    "StructureUpdateStats",
    "apply_weight_update",
    "apply_weight_updates",
    "apply_flow_update",
    "apply_flow_updates",
]


# ----------------------------------------------------------------------
# ILU — Index Label Update (Alg. 4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LabelUpdateStats:
    """Work performed by one ILU invocation."""

    shortcuts_changed: int
    labels_affected: int


def apply_weight_update(
    index: HierarchyIndex,
    u: int,
    v: int,
    new_weight: float,
) -> LabelUpdateStats:
    """Update edge ``(u, v)`` to ``new_weight`` and repair the index (ILU).

    The graph held by the index is mutated.  Handles both weight increases
    and decreases: every touched shortcut is *recomputed from its
    invariant* (base weight vs. all eliminated contributors) rather than
    min-merged, so increases cannot leave stale underestimates behind.
    """
    graph = index.graph
    if new_weight <= 0:
        raise GraphError(f"edge weight must be positive, got {new_weight}")
    if not graph.has_edge(u, v):
        raise EdgeNotFoundError(u, v)
    old_weight = graph.weight(u, v)
    graph.set_weight(u, v, new_weight)
    if new_weight == old_weight:
        return LabelUpdateStats(shortcuts_changed=0, labels_affected=0)

    rank = index.elim.rank
    bags = index.elim.bags
    middles = index.elim.middles
    inverse = index.inverse_bags()

    heap: list[tuple[tuple[int, int], int, int]] = []
    queued: set[tuple[int, int]] = set()

    def push(x: int, y: int) -> None:
        lo, hi = (x, y) if rank[x] < rank[y] else (y, x)
        if (lo, hi) not in queued:
            queued.add((lo, hi))
            heapq.heappush(heap, ((int(rank[lo]), int(rank[hi])), lo, hi))

    push(u, v)
    shortcuts_changed = 0
    dirty_vertices: set[int] = set()

    while heap:
        _, lo, hi = heapq.heappop(heap)
        # recompute the shortcut invariant for the pair (lo, hi)
        base = graph.adjacency(lo).get(hi, math.inf)
        best = base
        best_middle: int | None = None
        for c in inverse[lo] & inverse[hi]:
            contribution = bags[c][lo] + bags[c][hi]
            if contribution < best:
                best = contribution
                best_middle = c
        old = bags[lo].get(hi)
        if old is None:
            raise IndexStateError(
                f"pair ({lo}, {hi}) reached the ILU worklist but is not a bag edge"
            )
        if best != old:
            bags[lo][hi] = best
            middles[lo][hi] = best_middle
            shortcuts_changed += 1
            dirty_vertices.add(lo)
            # eliminating `lo` fed W(lo, hi) into every pair (hi, y) of its bag
            for y in bags[lo]:
                if y != hi:
                    push(hi, y)

    for vertex in dirty_vertices:
        index.sync_bag(vertex)
    labels_affected = (
        index.refresh_labels(seeds=dirty_vertices) if dirty_vertices else 0
    )
    return LabelUpdateStats(
        shortcuts_changed=shortcuts_changed,
        labels_affected=labels_affected,
    )


def apply_weight_updates(
    index: HierarchyIndex,
    updates: list[tuple[int, int, float]],
) -> LabelUpdateStats:
    """Apply a batch of weight updates, aggregating the statistics."""
    shortcuts = 0
    labels = 0
    for u, v, weight in updates:
        stats = apply_weight_update(index, u, v, weight)
        shortcuts += stats.shortcuts_changed
        labels += stats.labels_affected
    return LabelUpdateStats(shortcuts_changed=shortcuts, labels_affected=labels)


# ----------------------------------------------------------------------
# GSU / ISU — structure updates on flow change (Alg. 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StructureUpdateStats:
    """Work performed by one structure update."""

    strategy: str  # "noop" | "isu" | "gsu"
    window: tuple[int, int] | None
    bags_rebuilt: int
    labels_affected: int


def _ordering_window(
    phis: np.ndarray,
    r_old: int,
    phi_star: float,
) -> tuple[int, int]:
    """Rank window possibly affected by re-scoring ``order[r_old]``.

    Scans the recorded φ-at-elimination sequence outward from the old rank
    until the new score fits; conservative when dynamic degrees made the
    recorded sequence non-monotone.
    """
    n = len(phis)
    if phi_star >= phis[r_old]:
        r_hi = r_old
        while r_hi + 1 < n and phis[r_hi + 1] <= phi_star:
            r_hi += 1
        return r_old, r_hi
    r_lo = r_old
    while r_lo - 1 >= 0 and phis[r_lo - 1] >= phi_star:
        r_lo -= 1
    return r_lo, r_old


def _stitch_elimination(
    old: EliminationResult,
    keep_steps: int,
    new_order: list[int],
    new_phi: list[float],
    new_bags: dict[int, dict[int, float]],
    new_middles: dict[int, dict[int, int | None]],
    tail: EliminationResult | None = None,
    tail_from: int = 0,
) -> EliminationResult:
    """Combine a kept prefix, a re-run segment and (optionally) an old tail."""
    order = old.order[:keep_steps] + new_order
    phi = list(old.phi_at_elim[:keep_steps]) + new_phi
    bags = list(old.bags)
    middles = list(old.middles)
    for vertex in new_order:
        bags[vertex] = new_bags[vertex]
        middles[vertex] = new_middles[vertex]
    if tail is not None:
        order += tail.order[tail_from:]
        phi += list(tail.phi_at_elim[tail_from:])
    n = len(bags)
    rank = np.full(n, -1, dtype=np.int64)
    for r, vertex in enumerate(order):
        rank[vertex] = r
    return EliminationResult(
        order=order,
        rank=rank,
        bags=bags,
        middles=middles,
        phi_at_elim=np.asarray(phi, dtype=np.float64),
    )


def _gsu_rebuild(
    index: FAHLIndex,
    from_rank: int,
    state: tuple[list[dict[int, float]], list[dict[int, int | None]]] | None = None,
) -> StructureUpdateStats:
    """Rebuild the elimination from ``from_rank`` onward (GSU).

    ``state`` may supply a pre-reconstructed elimination frontier at
    ``from_rank`` (the ISU fallback path already has one); otherwise it is
    reconstructed from the current bags.
    """
    old = index.elim
    graph = index.graph
    adj, mids = state if state is not None else replay_prefix(graph, old, from_rank)
    active = set(old.order[from_rank:])
    importance = index.importance_function()
    order, phi, bags, middles = run_elimination_steps(adj, mids, importance, active)
    index.elim = _stitch_elimination(old, from_rank, order, phi, bags, middles)
    index.rebuild_structure()
    labels_affected = index.refresh_labels()
    return StructureUpdateStats(
        strategy="gsu",
        window=(from_rank, len(old.order) - 1),
        bags_rebuilt=len(order),
        labels_affected=labels_affected,
    )


def _frontier_matches(
    adj_new: list[dict[int, float]],
    mids_new: list[dict[int, int | None]],
    adj_old: list[dict[int, float]],
    mids_old: list[dict[int, int | None]],
    remaining: list[int],
) -> bool:
    """Whether two elimination frontiers agree on the remaining vertices.

    Both weights and shortcut middles must match: equal middles guarantee
    that every suffix shortcut still expands into a valid concrete path.
    """
    for vertex in remaining:
        if adj_new[vertex] != adj_old[vertex]:
            return False
        if mids_new[vertex] != mids_old[vertex]:
            return False
    return True


def apply_flow_update(
    index: FAHLIndex,
    vertex: int,
    new_flow: float,
    method: str = "isu",
) -> StructureUpdateStats:
    """Update a vertex's predicted flow and maintain the index structure.

    Parameters
    ----------
    method:
        ``"isu"`` (Alg. 3: window re-elimination with suffix splice,
        GSU fallback) or ``"gsu"`` (always rebuild from the affected rank).

    Notes
    -----
    Only the *index* is updated here; the caller owns the FRN's predicted
    flow series.  The Lemma-1 fast path returns ``strategy="noop"`` when
    the re-scored vertex keeps its place in the ordering sequence — labels
    are untouched because they depend only on weights and ordering.
    """
    if method not in ("isu", "gsu"):
        raise IndexStateError(f"method must be 'isu' or 'gsu', got {method!r}")
    if new_flow < 0:
        raise GraphError(f"flow must be non-negative, got {new_flow}")
    n = index.graph.num_vertices
    if not 0 <= vertex < n:
        raise IndexStateError(f"unknown vertex {vertex}")

    index.flows[vertex] = new_flow
    old = index.elim
    r_old = int(old.rank[vertex])
    degree_at_elim = len(old.bags[vertex])
    phi_star = index.phi_of(vertex, degree_at_elim)
    phis = old.phi_at_elim

    # Lemma 1: ordering-sequence position unchanged -> no structural work.
    r_lo, r_hi = _ordering_window(phis, r_old, phi_star)
    if r_lo == r_hi:
        phis[r_old] = phi_star
        return StructureUpdateStats(
            strategy="noop", window=None, bags_rebuilt=0, labels_affected=0
        )

    if method == "gsu":
        return _gsu_rebuild(index, r_lo)

    # ISU: re-eliminate the window only, then try to splice the suffix.
    graph = index.graph
    adj_base, mids_base = replay_prefix(graph, old, r_lo)
    adj_new = [dict(d) for d in adj_base]
    mids_new = [dict(d) for d in mids_base]
    window = set(old.order[r_lo:r_hi + 1])
    importance = index.importance_function()
    w_order, w_phi, w_bags, w_middles = run_elimination_steps(
        adj_new, mids_new, importance, window
    )
    # old frontier after the window: advance a copy of the r_lo state
    # through the window using the *old* bags (fills into window vertices
    # are irrelevant — they get removed — so restrict to the suffix).
    adj_old = [dict(d) for d in adj_base]
    mids_old = [dict(d) for d in mids_base]
    remaining = old.order[r_hi + 1:]
    suffix = set(remaining)
    for r in range(r_lo, r_hi + 1):
        c = old.order[r]
        for x in adj_old[c]:
            del mids_old[x][c]
        for x in list(adj_old[c]):
            del adj_old[x][c]
        adj_old[c] = {}
        mids_old[c] = {}
        relax_from_bag(adj_old, mids_old, old.bags[c], c, suffix)
    if not _frontier_matches(adj_new, mids_new, adj_old, mids_old, remaining):
        # adj_base is still the pristine r_lo frontier — resume GSU from it
        return _gsu_rebuild(index, r_lo, state=(adj_base, mids_base))

    old_parent = index.tree.parent.copy()
    index.elim = _stitch_elimination(
        old, r_lo, w_order, w_phi, w_bags, w_middles,
        tail=old, tail_from=r_hi + 1,
    )
    index.rebuild_structure()
    parent_changed = {
        int(v) for v in np.nonzero(index.tree.parent != old_parent)[0]
    }
    labels_affected = index.refresh_labels(
        seeds=set(w_order), force_subtree_roots=parent_changed
    )
    return StructureUpdateStats(
        strategy="isu",
        window=(r_lo, r_hi),
        bags_rebuilt=len(w_order),
        labels_affected=labels_affected,
    )


def apply_flow_updates(
    index: FAHLIndex,
    updates: dict[int, float],
    method: str = "isu",
) -> list[StructureUpdateStats]:
    """Apply several flow updates in vertex order; one stats entry each."""
    return [
        apply_flow_update(index, vertex, flow, method=method)
        for vertex, flow in sorted(updates.items())
    ]
