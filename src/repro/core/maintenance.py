"""Index maintenance in flow-aware road networks (paper Section IV).

Three algorithms keep a FAHL/H2H index consistent under the two change
types of an FRN:

* **ILU** (:func:`apply_weight_update`, Alg. 4) — an edge *weight* changed.
  The elimination structure is unaffected; the shortcut weights derived from
  the edge are repaired with a rank-ordered worklist, then labels are
  refreshed top-down with change-propagation pruning.  Works on any
  :class:`~repro.labeling.hierarchy.HierarchyIndex` (H2H too, which is how
  the Fig. 9 baseline updates are measured).

* **GSU** (:func:`apply_flow_update` with ``method="gsu"``) — a vertex
  *flow* changed, moving it in the degree-flow joint ordering.  The general
  strategy replays the (unchanged) elimination prefix from the recorded
  step log, re-runs the elimination for every later vertex and rebuilds
  structure + labels: always applicable, provably correct, lots of
  redundant work.

* **ISU** (``method="isu"``, Alg. 3) — re-eliminates only the affected rank
  *window*, then verifies that the elimination frontier after the window
  (edge weights **and** shortcut middles) matches the recorded one.  On a
  match the entire suffix of the old elimination remains valid verbatim and
  is spliced back; labels are refreshed only where bags or ancestor paths
  changed.  On a mismatch ISU falls back to GSU — correctness never depends
  on the window heuristic, because *any* faithfully executed elimination
  order yields exact labels.

All three return statistics (affected labels, strategy used, window) that
the experiment harness reports.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.core.fahl import FAHLIndex
from repro.errors import (
    EdgeNotFoundError,
    GraphError,
    IndexStateError,
    MaintenanceError,
)
from repro.labeling.hierarchy import HierarchyIndex
from repro.treedec.elimination import (
    EliminationResult,
    relax_from_bag,
    replay_prefix,
    run_elimination_steps,
)

__all__ = [
    "FAULT_POINTS",
    "IndexSnapshot",
    "LabelUpdateStats",
    "StructureUpdateStats",
    "apply_weight_update",
    "apply_weight_updates",
    "apply_flow_update",
    "apply_flow_updates",
    "set_fault_hook",
]


# ----------------------------------------------------------------------
# fault checkpoints (consumed by repro.testing.faults)
# ----------------------------------------------------------------------
#: Every instrumented point inside the maintenance algorithms, in execution
#: order.  A hook installed via :func:`set_fault_hook` is invoked with the
#: point name each time execution passes it; raising from the hook exercises
#: the transactional rollback at exactly that moment.
FAULT_POINTS: tuple[str, ...] = (
    "ilu:weight-set",
    "ilu:shortcut-repaired",
    "ilu:bags-synced",
    "ilu:labels-refreshed",
    "flow:flow-set",
    "isu:window-eliminated",
    "isu:frontier-compared",
    "isu:structure-stitched",
    "isu:labels-refreshed",
    "gsu:prefix-replayed",
    "gsu:suffix-eliminated",
    "gsu:structure-rebuilt",
    "gsu:labels-refreshed",
    # background consolidation (repro.core.overlay) — fold the delta overlay
    # into a back-buffer clone, then swap it in atomically.  Everything up to
    # and including "consolidate:swap-prepared" happens on the back buffer
    # only; a failure there discards the clone and leaves the serving index
    # untouched.  The commit itself is plain attribute assignment with no
    # checkpoint inside, so "consolidate:swap-committed" fires only once the
    # swap (index + overlay rebase + epoch bump) is fully visible.
    "consolidate:clone-created",
    "consolidate:weights-folded",
    "consolidate:flows-folded",
    "consolidate:swap-prepared",
    "consolidate:swap-committed",
)

_fault_hook: Callable[[str], None] | None = None


def set_fault_hook(hook: Callable[[str], None] | None) -> None:
    """Install (or clear, with ``None``) the maintenance fault hook.

    Test-only: the hook is called with the checkpoint name at every
    :data:`FAULT_POINTS` location.  An exception raised by the hook
    propagates out of the maintenance call exactly like an organic failure,
    which is how the chaos suite verifies rollback at every phase.
    """
    global _fault_hook
    _fault_hook = hook


def _checkpoint(name: str) -> None:
    if _fault_hook is not None:
        _fault_hook(name)


# ----------------------------------------------------------------------
# transactional snapshot / rollback
# ----------------------------------------------------------------------
#: Index attributes that are *replaced* (never mutated in place) by the
#: maintenance paths — saving the references and the list containers is
#: enough to restore them.
_REPLACED_ATTRS = (
    "labels",
    "vias",
    "bag_keys",
    "bag_weights",
    "bag_pos",
    "positions",
    "anc",
)
_REFERENCE_ATTRS = (
    "tree",
    "lca",
    "anc_offsets",
    "anc_flat",
    "_depth",
    "_inv_bags",
    "_arena",
    "_version",
)


class IndexSnapshot:
    """A restorable snapshot of a :class:`HierarchyIndex`'s mutable state.

    The maintenance algorithms mutate three kinds of state:

    * the elimination's bag/middle dicts and φ array, **in place** (ILU and
      the Lemma-1 fast path) — deep-copied here and restored into the
      *original* containers, so aliases held by the tree decomposition see
      pristine data again after a rollback;
    * per-vertex arrays (labels, vias, bag views, ancestor arrays) that are
      always *replaced* wholesale — shallow list copies suffice;
    * derived objects (tree, LCA, arena, version counter) that are rebuilt
      as units — saving the references suffices.

    Cost is one O(index-size) copy per snapshot — far below a label DP or a
    re-elimination, which is what makes per-update transactionality cheap
    enough to be the default.
    """

    def __init__(self, index: HierarchyIndex) -> None:
        self._index = index
        elim = index.elim
        self._elim_obj = elim
        self._order = list(elim.order)
        self._rank = elim.rank.copy()
        self._phi = elim.phi_at_elim.copy()
        self._bags = [dict(b) for b in elim.bags]
        self._middles = [dict(m) for m in elim.middles]
        self._replaced = {name: list(getattr(index, name)) for name in _REPLACED_ATTRS}
        self._references = {name: getattr(index, name) for name in _REFERENCE_ATTRS}
        flows = getattr(index, "flows", None)
        self._flows = flows.copy() if flows is not None else None

    def restore(self) -> None:
        """Roll the index back to the exact state captured at construction."""
        index = self._index
        elim = self._elim_obj
        # restore the original elimination object's contents in place: the
        # tree decomposition (and anything else) holding a reference to it
        # observes the rollback too.
        elim.order[:] = self._order
        elim.rank[:] = self._rank
        elim.phi_at_elim[:] = self._phi
        for bag, saved in zip(elim.bags, self._bags):
            bag.clear()
            bag.update(saved)
        for mid, saved in zip(elim.middles, self._middles):
            mid.clear()
            mid.update(saved)
        index.elim = elim
        for name, value in self._replaced.items():
            setattr(index, name, list(value))
        for name, value in self._references.items():
            setattr(index, name, value)
        if self._flows is not None:
            index.flows = self._flows.copy()


def _transactional(
    operation: str,
    index: HierarchyIndex,
    body: Callable[[], "LabelUpdateStats | StructureUpdateStats"],
):
    """Run ``body`` with all-or-nothing semantics on ``index``.

    Any exception triggers a full rollback to the pre-call state and is
    re-raised wrapped in :class:`MaintenanceError` (original chained as
    ``__cause__``).
    """
    snapshot = IndexSnapshot(index)
    try:
        return body()
    except Exception as exc:
        snapshot.restore()
        obs.counter(
            "repro_maintenance_rollbacks_total",
            "maintenance operations rolled back after a mid-flight failure",
        ).inc(op=operation)
        raise MaintenanceError(operation, exc) from exc


def _record_maintenance(
    op: str,
    seconds: float,
    labels_affected: int = 0,
    bags_rebuilt: int = 0,
    shortcuts_changed: int = 0,
) -> None:
    """Record one successful maintenance operation on the active registry."""
    registry = obs.get_registry()
    if not registry.enabled:
        return
    registry.histogram(
        "repro_maintenance_seconds", "wall time per maintenance operation"
    ).observe(seconds, op=op)
    registry.counter(
        "repro_maintenance_ops_total", "maintenance operations completed"
    ).inc(op=op)
    if labels_affected:
        registry.counter(
            "repro_maintenance_affected_labels_total",
            "labels rewritten by maintenance (the paper's affected-label metric)",
        ).inc(labels_affected, op=op)
    if bags_rebuilt:
        registry.counter(
            "repro_maintenance_bags_rebuilt_total",
            "vertices re-eliminated by structure maintenance",
        ).inc(bags_rebuilt, op=op)
    if shortcuts_changed:
        registry.counter(
            "repro_maintenance_shortcuts_changed_total",
            "shortcut weights repaired by ILU",
        ).inc(shortcuts_changed, op=op)


# ----------------------------------------------------------------------
# ILU — Index Label Update (Alg. 4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LabelUpdateStats:
    """Work performed by one ILU invocation."""

    shortcuts_changed: int
    labels_affected: int


def apply_weight_update(
    index: HierarchyIndex,
    u: int,
    v: int,
    new_weight: float,
    transactional: bool = True,
    prior_weight: float | None = None,
) -> LabelUpdateStats:
    """Update edge ``(u, v)`` to ``new_weight`` and repair the index (ILU).

    The graph held by the index is mutated.  Handles both weight increases
    and decreases: every touched shortcut is *recomputed from its
    invariant* (base weight vs. all eliminated contributors) rather than
    min-merged, so increases cannot leave stale underestimates behind.

    With ``transactional=True`` (default) any failure mid-repair rolls the
    index — graph weight included — back to its pre-call state and raises
    :class:`~repro.errors.MaintenanceError`; ``False`` skips the snapshot
    (slightly faster, no crash-consistency guarantee).

    ``prior_weight`` overrides the weight the *labels* were built under.
    The consolidation path needs this: its back-buffer clone shares the
    live graph, whose weight already holds ``new_weight`` (the overlay
    absorbed it), so reading the graph would make the repair a no-op.
    Passing the overlay's recorded stable weight makes ILU repair the
    clone's labels from that stable state to the current one.
    """
    graph = index.graph
    try:
        new_weight = float(new_weight)
    except (TypeError, ValueError) as exc:
        raise GraphError(f"edge weight must be a number, got {new_weight!r}") from exc
    if not math.isfinite(new_weight):
        raise GraphError(f"edge weight must be finite, got {new_weight!r}")
    if new_weight <= 0:
        raise GraphError(f"edge weight must be positive, got {new_weight}")
    if not graph.has_edge(u, v):
        raise EdgeNotFoundError(u, v)
    start = time.perf_counter()
    with obs.trace("maintenance.weight_update", u=u, v=v):
        if not transactional:
            stats = _ilu_impl(index, u, v, new_weight, prior_weight=prior_weight)
        else:
            old_weight = graph.weight(u, v)

            def body() -> LabelUpdateStats:
                try:
                    return _ilu_impl(index, u, v, new_weight, prior_weight=prior_weight)
                except Exception:
                    graph.set_weight(u, v, old_weight)
                    raise

            stats = _transactional("apply_weight_update", index, body)
    _record_maintenance(
        "ilu",
        time.perf_counter() - start,
        labels_affected=stats.labels_affected,
        shortcuts_changed=stats.shortcuts_changed,
    )
    return stats


def _ilu_impl(
    index: HierarchyIndex,
    u: int,
    v: int,
    new_weight: float,
    prior_weight: float | None = None,
) -> LabelUpdateStats:
    graph = index.graph
    old_weight = graph.weight(u, v) if prior_weight is None else float(prior_weight)
    graph.set_weight(u, v, new_weight)
    _checkpoint("ilu:weight-set")
    if new_weight == old_weight:
        return LabelUpdateStats(shortcuts_changed=0, labels_affected=0)

    rank = index.elim.rank
    bags = index.elim.bags
    middles = index.elim.middles
    inverse = index.inverse_bags()

    heap: list[tuple[tuple[int, int], int, int]] = []
    queued: set[tuple[int, int]] = set()

    def push(x: int, y: int) -> None:
        lo, hi = (x, y) if rank[x] < rank[y] else (y, x)
        if (lo, hi) not in queued:
            queued.add((lo, hi))
            heapq.heappush(heap, ((int(rank[lo]), int(rank[hi])), lo, hi))

    push(u, v)
    shortcuts_changed = 0
    dirty_vertices: set[int] = set()

    while heap:
        _, lo, hi = heapq.heappop(heap)
        # recompute the shortcut invariant for the pair (lo, hi)
        base = graph.adjacency(lo).get(hi, math.inf)
        best = base
        best_middle: int | None = None
        for c in inverse[lo] & inverse[hi]:
            contribution = bags[c][lo] + bags[c][hi]
            if contribution < best:
                best = contribution
                best_middle = c
        old = bags[lo].get(hi)
        if old is None:
            raise IndexStateError(
                f"pair ({lo}, {hi}) reached the ILU worklist but is not a bag edge"
            )
        # the recorded middle must stay consistent with the recomputed
        # minimum even when the *value* is unchanged (the old realiser may
        # have grown while another contributor now ties it) — path
        # unpacking expands through the middle, so a stale one yields a
        # non-shortest concrete path.
        middles[lo][hi] = best_middle
        if best != old:
            bags[lo][hi] = best
            shortcuts_changed += 1
            dirty_vertices.add(lo)
            # eliminating `lo` fed W(lo, hi) into every pair (hi, y) of its bag
            for y in bags[lo]:
                if y != hi:
                    push(hi, y)
    _checkpoint("ilu:shortcut-repaired")

    for vertex in dirty_vertices:
        index.sync_bag(vertex)
    _checkpoint("ilu:bags-synced")
    labels_affected = (
        index.refresh_labels(seeds=dirty_vertices) if dirty_vertices else 0
    )
    _checkpoint("ilu:labels-refreshed")
    return LabelUpdateStats(
        shortcuts_changed=shortcuts_changed,
        labels_affected=labels_affected,
    )


def apply_weight_updates(
    index: HierarchyIndex,
    updates: list[tuple[int, int, float]],
    atomic: bool = False,
) -> LabelUpdateStats:
    """Apply a batch of weight updates, aggregating the statistics.

    With ``atomic=False`` (default) each update is individually
    transactional: a failure mid-batch leaves the successfully applied
    prefix in place and raises.  ``atomic=True`` gives all-or-nothing batch
    semantics — any failure (validation included) rolls the *entire batch*
    back before :class:`~repro.errors.MaintenanceError` is raised.
    """

    def run() -> LabelUpdateStats:
        shortcuts = 0
        labels = 0
        for u, v, weight in updates:
            stats = apply_weight_update(
                index, u, v, weight, transactional=not atomic
            )
            shortcuts += stats.shortcuts_changed
            labels += stats.labels_affected
        return LabelUpdateStats(shortcuts_changed=shortcuts, labels_affected=labels)

    if not atomic:
        return run()
    weights_before = {
        (u, v): index.graph.weight(u, v)
        for u, v, _ in updates
        if index.graph.has_edge(u, v)
    }

    def body() -> LabelUpdateStats:
        try:
            return run()
        except Exception:
            for (u, v), w in weights_before.items():
                index.graph.set_weight(u, v, w)
            raise

    return _transactional("apply_weight_updates", index, body)


# ----------------------------------------------------------------------
# GSU / ISU — structure updates on flow change (Alg. 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StructureUpdateStats:
    """Work performed by one structure update."""

    strategy: str  # "noop" | "isu" | "gsu"
    window: tuple[int, int] | None
    bags_rebuilt: int
    labels_affected: int


def _ordering_window(
    phis: np.ndarray,
    r_old: int,
    phi_star: float,
) -> tuple[int, int]:
    """Rank window possibly affected by re-scoring ``order[r_old]``.

    Scans the recorded φ-at-elimination sequence outward from the old rank
    until the new score fits; conservative when dynamic degrees made the
    recorded sequence non-monotone.
    """
    n = len(phis)
    if phi_star >= phis[r_old]:
        r_hi = r_old
        while r_hi + 1 < n and phis[r_hi + 1] <= phi_star:
            r_hi += 1
        return r_old, r_hi
    r_lo = r_old
    while r_lo - 1 >= 0 and phis[r_lo - 1] >= phi_star:
        r_lo -= 1
    return r_lo, r_old


def _stitch_elimination(
    old: EliminationResult,
    keep_steps: int,
    new_order: list[int],
    new_phi: list[float],
    new_bags: dict[int, dict[int, float]],
    new_middles: dict[int, dict[int, int | None]],
    tail: EliminationResult | None = None,
    tail_from: int = 0,
) -> EliminationResult:
    """Combine a kept prefix, a re-run segment and (optionally) an old tail."""
    order = old.order[:keep_steps] + new_order
    phi = list(old.phi_at_elim[:keep_steps]) + new_phi
    bags = list(old.bags)
    middles = list(old.middles)
    for vertex in new_order:
        bags[vertex] = new_bags[vertex]
        middles[vertex] = new_middles[vertex]
    if tail is not None:
        order += tail.order[tail_from:]
        phi += list(tail.phi_at_elim[tail_from:])
    n = len(bags)
    rank = np.full(n, -1, dtype=np.int64)
    for r, vertex in enumerate(order):
        rank[vertex] = r
    return EliminationResult(
        order=order,
        rank=rank,
        bags=bags,
        middles=middles,
        phi_at_elim=np.asarray(phi, dtype=np.float64),
    )


def _gsu_rebuild(
    index: FAHLIndex,
    from_rank: int,
    state: tuple[list[dict[int, float]], list[dict[int, int | None]]] | None = None,
) -> StructureUpdateStats:
    """Rebuild the elimination from ``from_rank`` onward (GSU).

    ``state`` may supply a pre-reconstructed elimination frontier at
    ``from_rank`` (the ISU fallback path already has one); otherwise it is
    reconstructed from the current bags.
    """
    old = index.elim
    graph = index.graph
    adj, mids = state if state is not None else replay_prefix(graph, old, from_rank)
    _checkpoint("gsu:prefix-replayed")
    active = set(old.order[from_rank:])
    importance = index.importance_function()
    order, phi, bags, middles = run_elimination_steps(adj, mids, importance, active)
    _checkpoint("gsu:suffix-eliminated")
    index.elim = _stitch_elimination(old, from_rank, order, phi, bags, middles)
    index.rebuild_structure()
    _checkpoint("gsu:structure-rebuilt")
    labels_affected = index.refresh_labels()
    _checkpoint("gsu:labels-refreshed")
    return StructureUpdateStats(
        strategy="gsu",
        window=(from_rank, len(old.order) - 1),
        bags_rebuilt=len(order),
        labels_affected=labels_affected,
    )


def _frontier_matches(
    adj_new: list[dict[int, float]],
    mids_new: list[dict[int, int | None]],
    adj_old: list[dict[int, float]],
    mids_old: list[dict[int, int | None]],
    remaining: list[int],
) -> bool:
    """Whether two elimination frontiers agree on the remaining vertices.

    Both weights and shortcut middles must match: equal middles guarantee
    that every suffix shortcut still expands into a valid concrete path.
    """
    for vertex in remaining:
        if adj_new[vertex] != adj_old[vertex]:
            return False
        if mids_new[vertex] != mids_old[vertex]:
            return False
    return True


def apply_flow_update(
    index: FAHLIndex,
    vertex: int,
    new_flow: float,
    method: str = "isu",
    transactional: bool = True,
) -> StructureUpdateStats:
    """Update a vertex's predicted flow and maintain the index structure.

    Parameters
    ----------
    method:
        ``"isu"`` (Alg. 3: window re-elimination with suffix splice,
        GSU fallback) or ``"gsu"`` (always rebuild from the affected rank).
    transactional:
        ``True`` (default) snapshots the index first and rolls back on any
        failure, raising :class:`~repro.errors.MaintenanceError`: a crash
        mid-ISU/GSU can no longer leave a half-re-eliminated index behind.
        ``False`` skips the snapshot.

    Notes
    -----
    Only the *index* is updated here; the caller owns the FRN's predicted
    flow series.  The Lemma-1 fast path returns ``strategy="noop"`` when
    the re-scored vertex keeps its place in the ordering sequence — labels
    are untouched because they depend only on weights and ordering.
    """
    if method not in ("isu", "gsu"):
        raise IndexStateError(f"method must be 'isu' or 'gsu', got {method!r}")
    try:
        new_flow = float(new_flow)
    except (TypeError, ValueError) as exc:
        raise GraphError(f"flow must be a number, got {new_flow!r}") from exc
    if not math.isfinite(new_flow):
        # NaN slips through a plain `new_flow < 0` check (all comparisons
        # with NaN are False) and would poison every later φ comparison.
        raise GraphError(f"flow must be finite, got {new_flow!r}")
    if new_flow < 0:
        raise GraphError(f"flow must be non-negative, got {new_flow}")
    n = index.graph.num_vertices
    if not 0 <= vertex < n:
        raise IndexStateError(f"unknown vertex {vertex}")
    start = time.perf_counter()
    with obs.trace("maintenance.flow_update", vertex=vertex, method=method):
        if not transactional:
            stats = _flow_update_impl(index, vertex, new_flow, method)
        else:
            stats = _transactional(
                "apply_flow_update",
                index,
                lambda: _flow_update_impl(index, vertex, new_flow, method),
            )
    _record_maintenance(
        stats.strategy,
        time.perf_counter() - start,
        labels_affected=stats.labels_affected,
        bags_rebuilt=stats.bags_rebuilt,
    )
    if method == "isu" and stats.strategy == "gsu":
        obs.counter(
            "repro_maintenance_isu_fallbacks_total",
            "ISU windows whose frontier mismatched, falling back to GSU",
        ).inc()
    return stats


def _flow_update_impl(
    index: FAHLIndex,
    vertex: int,
    new_flow: float,
    method: str,
) -> StructureUpdateStats:
    index.flows[vertex] = new_flow
    _checkpoint("flow:flow-set")
    old = index.elim
    r_old = int(old.rank[vertex])
    degree_at_elim = len(old.bags[vertex])
    phi_star = index.phi_of(vertex, degree_at_elim)
    phis = old.phi_at_elim

    # Lemma 1: ordering-sequence position unchanged -> no structural work.
    r_lo, r_hi = _ordering_window(phis, r_old, phi_star)
    if r_lo == r_hi:
        phis[r_old] = phi_star
        return StructureUpdateStats(
            strategy="noop", window=None, bags_rebuilt=0, labels_affected=0
        )

    if method == "gsu":
        return _gsu_rebuild(index, r_lo)

    # ISU: re-eliminate the window only, then try to splice the suffix.
    graph = index.graph
    adj_base, mids_base = replay_prefix(graph, old, r_lo)
    adj_new = [dict(d) for d in adj_base]
    mids_new = [dict(d) for d in mids_base]
    window = set(old.order[r_lo:r_hi + 1])
    importance = index.importance_function()
    w_order, w_phi, w_bags, w_middles = run_elimination_steps(
        adj_new, mids_new, importance, window
    )
    _checkpoint("isu:window-eliminated")
    # old frontier after the window: advance a copy of the r_lo state
    # through the window using the *old* bags (fills into window vertices
    # are irrelevant — they get removed — so restrict to the suffix).
    adj_old = [dict(d) for d in adj_base]
    mids_old = [dict(d) for d in mids_base]
    remaining = old.order[r_hi + 1:]
    suffix = set(remaining)
    for r in range(r_lo, r_hi + 1):
        c = old.order[r]
        for x in adj_old[c]:
            del mids_old[x][c]
        for x in list(adj_old[c]):
            del adj_old[x][c]
        adj_old[c] = {}
        mids_old[c] = {}
        relax_from_bag(adj_old, mids_old, old.bags[c], c, suffix)
    frontier_ok = _frontier_matches(adj_new, mids_new, adj_old, mids_old, remaining)
    _checkpoint("isu:frontier-compared")
    if not frontier_ok:
        # adj_base is still the pristine r_lo frontier — resume GSU from it
        return _gsu_rebuild(index, r_lo, state=(adj_base, mids_base))

    old_parent = index.tree.parent.copy()
    index.elim = _stitch_elimination(
        old, r_lo, w_order, w_phi, w_bags, w_middles,
        tail=old, tail_from=r_hi + 1,
    )
    index.rebuild_structure()
    _checkpoint("isu:structure-stitched")
    parent_changed = {
        int(v) for v in np.nonzero(index.tree.parent != old_parent)[0]
    }
    labels_affected = index.refresh_labels(
        seeds=set(w_order), force_subtree_roots=parent_changed
    )
    _checkpoint("isu:labels-refreshed")
    return StructureUpdateStats(
        strategy="isu",
        window=(r_lo, r_hi),
        bags_rebuilt=len(w_order),
        labels_affected=labels_affected,
    )


def apply_flow_updates(
    index: FAHLIndex,
    updates: dict[int, float],
    method: str = "isu",
    atomic: bool = False,
) -> list[StructureUpdateStats]:
    """Apply several flow updates in vertex order; one stats entry each.

    With ``atomic=False`` (default) each update is individually
    transactional: a mid-batch failure keeps the already-applied prefix and
    raises.  ``atomic=True`` rolls the *whole batch* back on any failure —
    validation errors included — before raising
    :class:`~repro.errors.MaintenanceError`.
    """

    def run() -> list[StructureUpdateStats]:
        return [
            apply_flow_update(
                index, vertex, flow, method=method, transactional=not atomic
            )
            for vertex, flow in sorted(updates.items())
        ]

    if not atomic:
        return run()
    return _transactional("apply_flow_updates", index, run)
