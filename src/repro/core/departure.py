"""Departure-time optimisation over the flow horizon.

FSPQ takes the time slice as a query input; a navigation service's natural
follow-up is "*when* should I leave?".  :func:`best_departure` sweeps a
window of slices, runs the flow-aware query at each, and returns the slice
minimising the chosen objective:

* ``"score"`` — the flow-aware distance FSD (Eq. 1): the paper's own
  optimum, balancing detour against congestion;
* ``"flow"`` — raw path congestion (comfort-first);
* ``"distance"`` — spatial length of the chosen route (fuel-first).

Because the spatial graph is static, ``SPDis`` is computed once and the
per-slice work is only candidate scoring under that slice's flows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.errors import QueryError

__all__ = ["DeparturePlan", "best_departure"]

_OBJECTIVES = ("score", "flow", "distance")


@dataclass(frozen=True)
class DeparturePlan:
    """The chosen slice plus the full per-slice sweep for inspection."""

    timestep: int
    result: FSPResult
    sweep: dict[int, FSPResult]

    @property
    def worst_timestep(self) -> int:
        """The slice to avoid: highest absolute congestion on its route.

        Scores are min-max normalised *per query* and therefore not
        comparable across slices; raw path flow is.
        """
        return max(self.sweep, key=lambda t: self.sweep[t].flow)


def best_departure(
    engine: FlowAwareEngine,
    source: int,
    target: int,
    timesteps: list[int] | range,
    objective: str = "score",
) -> DeparturePlan:
    """Pick the best departure slice for the trip ``source -> target``."""
    if objective not in _OBJECTIVES:
        raise QueryError(
            f"objective must be one of {_OBJECTIVES}, got {objective!r}"
        )
    slices = list(timesteps)
    if not slices:
        raise QueryError("best_departure needs at least one timestep")

    sweep: dict[int, FSPResult] = {}
    for t in slices:
        sweep[int(t)] = engine.query(FSPQuery(source, target, int(t)))

    def key(t: int) -> tuple[float, float, int]:
        result = sweep[t]
        primary = getattr(result, objective)
        return (primary, result.score, t)

    best_t = min(sweep, key=key)
    return DeparturePlan(timestep=best_t, result=sweep[best_t], sweep=sweep)
