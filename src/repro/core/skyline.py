"""Bi-criteria skyline (Pareto) path search over an FRN.

The paper's related work contrasts FSPQ with skyline path finding: instead
of scalarising distance and flow with α (Eq. 1), a skyline query returns
*every* path not dominated in both criteria.  This module implements the
classic label-correcting bi-criteria search for the (spatial distance,
path flow) pair:

* each vertex keeps a Pareto frontier of (distance, flow) labels;
* a new label is kept only if no existing label dominates it (and it
  evicts the labels it dominates);
* the search is exhaustive over undominated labels, so the returned
  frontier at the target is exact.

Connection to FSPQ (property-tested): for every α the flow-aware optimum
within ``MCPDis`` is a skyline path — Eq. 1 is monotone in both criteria,
so a dominated path can never minimise it.  The skyline is therefore the
α-free answer set; its size also explains FSPQ's pruning behaviour (a
small skyline ⇒ few genuinely competitive candidates).

Complexity is output-sensitive (frontier sizes can grow combinatorially on
adversarial inputs); ``max_labels_per_vertex`` caps the frontiers and the
truncation is reported, never silent.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


from repro.errors import QueryError
from repro.graph.frn import FlowAwareRoadNetwork

__all__ = ["SkylinePath", "SkylineResult", "skyline_paths"]


@dataclass(frozen=True)
class SkylinePath:
    """One Pareto-optimal path with its two criteria."""

    path: tuple[int, ...]
    distance: float
    flow: float

    def dominates(self, other: "SkylinePath") -> bool:
        """Weak dominance: no worse in both criteria, better in one."""
        return (
            self.distance <= other.distance
            and self.flow <= other.flow
            and (self.distance < other.distance or self.flow < other.flow)
        )


@dataclass(frozen=True)
class SkylineResult:
    """The Pareto frontier at the target, sorted by distance."""

    paths: list[SkylinePath]
    truncated: bool

    def __len__(self) -> int:
        return len(self.paths)


def _dominated(labels: list[tuple[float, float]], dist: float, flow: float) -> bool:
    return any(d <= dist and f <= flow for d, f in labels)


def skyline_paths(
    frn: FlowAwareRoadNetwork,
    source: int,
    target: int,
    timestep: int,
    max_distance: float = float("inf"),
    max_labels_per_vertex: int = 64,
) -> SkylineResult:
    """Exact (distance, flow) Pareto frontier of paths ``source -> target``.

    Parameters
    ----------
    max_distance:
        Optional spatial bound (use ``eta_u * SPDis`` to match FSPQ's
        candidate space).
    max_labels_per_vertex:
        Frontier cap per vertex; hitting it sets ``truncated``.

    Notes
    -----
    The search runs over walks (no explicit simplicity check): with
    positive edge weights and non-negative flows, any walk repeating a
    vertex is dominated by its cycle-free shortcut, so per-vertex
    dominance pruning is *exact* and the returned frontier contains only
    simple paths.  (An explicit simplicity constraint would actually break
    exactness of dominance pruning — a dominated label can sometimes
    detour around vertices the dominating label's path blocks.)
    """
    n = frn.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise QueryError(f"unknown vertices ({source}, {target})")
    if max_labels_per_vertex < 1:
        raise QueryError(
            f"max_labels_per_vertex must be >= 1, got {max_labels_per_vertex}"
        )
    flow_vector = frn.predicted_at(timestep)
    graph = frn.graph

    start = SkylinePath(
        path=(source,), distance=0.0, flow=float(flow_vector[source])
    )
    if source == target:
        return SkylineResult(paths=[start], truncated=False)

    # per-vertex Pareto frontiers of (distance, flow)
    frontiers: list[list[tuple[float, float]]] = [[] for _ in range(n)]
    frontiers[source].append((0.0, start.flow))
    results: list[SkylinePath] = []
    truncated = False
    counter = 0
    # runaway guard for unbounded max_distance on adversarial inputs
    pop_budget = max(10_000, 16 * n * max_labels_per_vertex)
    heap: list[tuple[float, float, int, tuple[int, ...]]] = [
        (0.0, start.flow, counter, (source,))
    ]
    while heap:
        if pop_budget == 0:
            truncated = True
            break
        pop_budget -= 1
        dist, flow, _, path = heapq.heappop(heap)
        vertex = path[-1]
        # a popped label may have been dominated after insertion
        if _dominated(
            [(d, f) for d, f in frontiers[vertex] if (d, f) != (dist, flow)],
            dist,
            flow,
        ):
            continue
        if vertex == target:
            candidate = SkylinePath(path=path, distance=dist, flow=flow)
            if not any(r.dominates(candidate) for r in results):
                results = [r for r in results if not candidate.dominates(r)]
                results.append(candidate)
            continue
        for nbr, weight in graph.neighbor_items(vertex):
            new_dist = dist + weight
            if new_dist > max_distance:
                continue
            new_flow = flow + float(flow_vector[nbr])
            frontier = frontiers[nbr]
            if _dominated(frontier, new_dist, new_flow):
                continue
            frontier[:] = [
                (d, f)
                for d, f in frontier
                if not (new_dist <= d and new_flow <= f)
            ]
            if len(frontier) >= max_labels_per_vertex:
                truncated = True
                continue
            frontier.append((new_dist, new_flow))
            counter += 1
            heapq.heappush(heap, (new_dist, new_flow, counter, path + (nbr,)))

    results.sort(key=lambda sp: (sp.distance, sp.flow))
    return SkylineResult(paths=results, truncated=truncated)
