"""Pruning query bounds on path traffic-flow (paper Lemma 4).

Given the candidate flow range ``[TF_min, TF_max]``, the blending weight
``α`` and the distance-constraint factor ``η_u``, Lemma 4 derives the
interval outside which FPSPS prunes a candidate without scoring it:

.. math::

    LB = TF_{min} - (TF_{max} - TF_{min}) \\cdot
         \\frac{\\alpha \\eta_u}{(\\eta_u - 1)(1 - \\alpha)}

    UB = TF_{min} + (TF_{max} - TF_{min}) \\cdot
         \\frac{\\eta_u - 1 - \\alpha \\eta_u}{(\\eta_u - 1)(1 - \\alpha)}

A note on soundness (documented, and covered by tests): the lemma bounds
the *distance* term of Eq. 1 by its maximum ``α·η_u/(η_u−1)``, so the UB is
safe only when the optimum's normalised flow does not exceed
``(1 − α·η_u/(η_u−1)) / (1−α)`` — which holds in the regimes the paper
evaluates (small α, moderate η_u) but is not universal.
:func:`adaptive_upper_bound` provides the always-sound alternative used by
the ``pruning="adaptive"`` mode of the engine: a candidate whose flow-only
score already exceeds the best score seen can never win.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError

__all__ = [
    "FlowBounds",
    "adaptive_prune_mask",
    "adaptive_upper_bound",
    "lemma4_bounds",
]


@dataclass(frozen=True)
class FlowBounds:
    """Inclusive traffic-flow pruning interval ``[lower, upper]``."""

    lower: float
    upper: float

    def prunes(self, flow: float) -> bool:
        """Whether a candidate with this path flow is pruned."""
        return flow < self.lower or flow > self.upper

    def prunes_many(self, flows: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`prunes`: a boolean mask over a flow vector.

        Same comparisons as the scalar method, applied element-wise, so the
        mask agrees entry for entry with a :meth:`prunes` loop.
        """
        flows = np.asarray(flows, dtype=np.float64)
        return (flows < self.lower) | (flows > self.upper)


def lemma4_bounds(
    flow_min: float,
    flow_max: float,
    alpha: float,
    eta_u: float,
) -> FlowBounds:
    """The paper's Lemma-4 bounds over the candidate flow range."""
    if not 0.0 < alpha < 1.0:
        raise QueryError(f"alpha must be in (0, 1), got {alpha}")
    if eta_u <= 1.0:
        raise QueryError(f"eta_u must be > 1, got {eta_u}")
    if flow_max < flow_min:
        raise QueryError(
            f"flow_max ({flow_max}) must be >= flow_min ({flow_min})"
        )
    spread = flow_max - flow_min
    denom = (eta_u - 1.0) * (1.0 - alpha)
    lower = flow_min - spread * (alpha * eta_u) / denom
    upper = flow_min + spread * (eta_u - 1.0 - alpha * eta_u) / denom
    return FlowBounds(lower=lower, upper=upper)


def adaptive_upper_bound(
    best_score: float,
    flow_min: float,
    flow_max: float,
    alpha: float,
) -> float:
    """Sound flow upper bound given the best FSD score found so far.

    A candidate's score is at least ``(1-α) · TF'``, so any candidate with
    ``TF' > best_score / (1-α)`` cannot beat the incumbent.  Translated
    back to raw flow units:

    .. math::

        UB = TF_{min} + (TF_{max} - TF_{min}) \\cdot
             \\frac{best\\_score}{1 - \\alpha}
    """
    if not 0.0 < alpha < 1.0:
        raise QueryError(f"alpha must be in (0, 1), got {alpha}")
    spread = flow_max - flow_min
    if spread <= 0:
        return flow_max
    return flow_min + spread * best_score / (1.0 - alpha)


def adaptive_prune_mask(
    scores: np.ndarray,
    flows: np.ndarray,
    flow_min: float,
    flow_max: float,
    alpha: float,
) -> np.ndarray:
    """The whole adaptive-pruning pass as one array mask.

    The sequential loop prunes candidate ``i`` when its flow exceeds
    :func:`adaptive_upper_bound` of the best score among the *unpruned*
    candidates before it.  That running best equals the running minimum
    over **all** earlier scores: a pruned candidate satisfies
    ``(1-α)·TF' > best_score``, and since its score is at least
    ``(1-α)·TF'``, it is strictly above the incumbent and can never lower
    the minimum.  So the prefix minimum of the full score vector
    reproduces the loop's incumbent exactly, and the mask agrees
    candidate for candidate with the scalar pass (same float operations,
    same comparisons).

    Candidate 0 is never pruned (no incumbent exists yet).
    """
    if not 0.0 < alpha < 1.0:
        raise QueryError(f"alpha must be in (0, 1), got {alpha}")
    scores = np.asarray(scores, dtype=np.float64)
    flows = np.asarray(flows, dtype=np.float64)
    if scores.shape != flows.shape or scores.ndim != 1:
        raise QueryError("scores and flows must be aligned 1-D arrays")
    mask = np.zeros(scores.shape, dtype=bool)
    if scores.size < 2:
        return mask
    spread = flow_max - flow_min
    incumbent = np.minimum.accumulate(scores)[:-1]
    if spread <= 0:
        bound = np.full_like(incumbent, flow_max)
    else:
        bound = flow_min + spread * incumbent / (1.0 - alpha)
    mask[1:] = flows[1:] > bound
    return mask
