"""FSPQ problem types: queries and results.

A flow-aware shortest path query is ``Q = <Q_u, D_u, t_q>`` (query vertex,
destination vertex, time slice).  The result carries the chosen path, its
spatial distance and path flow, the flow-aware score (Eq. 1), and the
engine's work counters — candidate counts and pruning statistics are what
the paper's efficiency figures measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError

__all__ = ["FSPQuery", "FSPResult"]


@dataclass(frozen=True)
class FSPQuery:
    """A flow-aware shortest path query ``<Q_u, D_u, t_q>``."""

    source: int
    target: int
    timestep: int

    def validated(self, num_vertices: int, num_timesteps: int) -> "FSPQuery":
        """Return self after range-checking against an FRN's dimensions."""
        if not (0 <= self.source < num_vertices and 0 <= self.target < num_vertices):
            raise QueryError(
                f"query vertices ({self.source}, {self.target}) out of range"
            )
        if not 0 <= self.timestep < num_timesteps:
            raise QueryError(
                f"query timestep {self.timestep} out of range [0, {num_timesteps})"
            )
        return self


@dataclass(frozen=True)
class FSPResult:
    """Outcome of one FSPQ evaluation.

    Attributes
    ----------
    path:
        The flow-aware shortest path (vertex sequence).
    distance:
        Spatial distance of ``path``.
    flow:
        Path traffic-flow of ``path`` at the query slice.
    score:
        Flow-aware distance FSD (Eq. 1) of ``path``.
    shortest_distance:
        ``SPDis(Q_u, D_u)`` — the pure spatial optimum used for MCPDis.
    num_candidates:
        Candidates enumerated within the MCPDis bound.
    num_pruned:
        Candidates skipped by the flow bounds before scoring.
    truncated:
        Whether the candidate cap fired (coverage caveat).
    early_stopped:
        Whether FPSPS's score-dominance bound stopped the candidate
        enumeration before the MCPDis distance bound did (every skipped
        candidate's distance term alone already exceeded the best score).
    """

    path: tuple[int, ...]
    distance: float
    flow: float
    score: float
    shortest_distance: float
    num_candidates: int
    num_pruned: int
    truncated: bool
    early_stopped: bool = False
