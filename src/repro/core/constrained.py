"""Constrained flow-aware shortest path querying.

The paper closes with "we plan to extend our work to manage the FSPQ in
*constrained* flow-aware road networks"; this module implements that
extension.  A :class:`QueryConstraints` bundle restricts the candidate
space:

* ``forbidden_vertices`` — road closures; enforced *during* enumeration
  (banned in every A*/Yen spur search), not by post-filtering, so the
  engine still sees the k cheapest feasible paths;
* ``max_vertex_flow`` — avoid any vertex busier than a threshold at the
  query slice (e.g. "never route me through gridlock");
* ``max_path_flow`` — cap the total congestion along the path;
* ``max_hops`` — bound the number of road segments (turn-restriction
  proxy).

Scoring normalisation (Eq. 1-3) is computed over the *feasible* candidate
set, so constraints change both which paths exist and how the survivors
compare.  An infeasible query raises :class:`ConstraintError` rather than
silently returning the unconstrained optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.errors import QueryError
from repro.paths.astar_search import astar_path
from repro.paths.candidates import heuristic_for
from repro.paths.scoring import NormalizationContext, path_flow
from repro.paths.yen import iter_shortest_paths

__all__ = ["ConstraintError", "QueryConstraints", "ConstrainedFlowAwareEngine"]


class ConstraintError(QueryError):
    """No path satisfies the given constraints."""


@dataclass(frozen=True)
class QueryConstraints:
    """Restrictions on admissible FSPQ candidate paths."""

    forbidden_vertices: frozenset[int] = field(default_factory=frozenset)
    max_vertex_flow: float | None = None
    max_path_flow: float | None = None
    max_hops: int | None = None

    def __post_init__(self) -> None:
        if self.max_vertex_flow is not None and self.max_vertex_flow < 0:
            raise QueryError("max_vertex_flow must be non-negative")
        if self.max_path_flow is not None and self.max_path_flow < 0:
            raise QueryError("max_path_flow must be non-negative")
        if self.max_hops is not None and self.max_hops < 1:
            raise QueryError("max_hops must be >= 1")

    def is_trivial(self) -> bool:
        """Whether the constraints admit everything."""
        return (
            not self.forbidden_vertices
            and self.max_vertex_flow is None
            and self.max_path_flow is None
            and self.max_hops is None
        )

    def admits(self, path: list[int] | tuple[int, ...],
               flow_vector: np.ndarray) -> bool:
        """Whether a concrete path satisfies the flow/hop constraints.

        ``forbidden_vertices`` is enforced during enumeration; this check
        covers the remaining (path-dependent) constraints.
        """
        if self.max_hops is not None and len(path) - 1 > self.max_hops:
            return False
        if self.max_vertex_flow is not None:
            if any(flow_vector[v] > self.max_vertex_flow for v in path):
                return False
        if self.max_path_flow is not None:
            if path_flow(flow_vector, list(path)) > self.max_path_flow:
                return False
        return True


class ConstrainedFlowAwareEngine(FlowAwareEngine):
    """FSPQ engine answering queries under :class:`QueryConstraints`.

    The unconstrained :meth:`query` of the base class remains available;
    :meth:`query_constrained` adds the restricted variant.  The distance
    oracle stays admissible under vertex removals (removals only increase
    true distances), so index-guided enumeration remains exact on the
    constrained graph.
    """

    def query_constrained(
        self,
        query: FSPQuery,
        constraints: QueryConstraints,
    ) -> FSPResult:
        """Answer one constrained FSPQ query."""
        if constraints.is_trivial():
            return self.query(query)
        frn = self.frn
        query.validated(frn.num_vertices, frn.num_timesteps)
        source, target, t = query.source, query.target, query.timestep
        banned = set(constraints.forbidden_vertices)
        if source in banned or target in banned:
            raise ConstraintError(
                "query endpoints cannot be forbidden vertices"
            )
        flow_vector = self._flow_at(t)

        if source == target:
            if not constraints.admits((source,), flow_vector):
                raise ConstraintError(
                    f"vertex {source} violates the flow constraints"
                )
            return FSPResult(
                path=(source,),
                distance=0.0,
                flow=float(flow_vector[source]),
                score=0.0,
                shortest_distance=0.0,
                num_candidates=1,
                num_pruned=0,
                truncated=False,
            )

        graph = frn.graph
        heuristic = heuristic_for(graph, self.oracle, target)
        # constrained SPDis anchors the MCPDis bound: the shortest path
        # *avoiding the closures* is what the user can actually drive.
        _, spdis = astar_path(
            graph, source, target, heuristic, banned_vertices=banned
        )
        if not math.isfinite(spdis):
            raise ConstraintError(
                f"no path between {source} and {target} avoids the "
                f"{len(banned)} forbidden vertices"
            )
        max_distance = self.eta_u * spdis

        paths: list[list[int]] = []
        distances: list[float] = []
        flows: list[float] = []
        rejected = 0
        truncated = False
        # enumeration budget: rejected candidates must also be bounded, or
        # a tight flow cap could force Yen through the entire (potentially
        # huge) MCPDis path space before giving up
        budget = self.max_candidates * 8
        for path, dist in iter_shortest_paths(
            graph, source, target, heuristic,
            max_distance=max_distance, banned_vertices=banned,
        ):
            if len(paths) == self.max_candidates or budget == 0:
                truncated = True
                break
            budget -= 1
            if not constraints.admits(path, flow_vector):
                rejected += 1
                continue
            paths.append(path)
            distances.append(dist)
            flows.append(path_flow(flow_vector, path))
        if not paths:
            raise ConstraintError(
                f"no feasible path between {source} and {target} within "
                f"MCPDis={max_distance} ({rejected} candidates rejected)"
            )

        context = NormalizationContext(
            dist_min=spdis,
            dist_max=max_distance,
            flow_min=min(flows),
            flow_max=max(flows),
        )
        best: tuple[float, float, float] | None = None
        best_index = -1
        for i, (dist, flow) in enumerate(zip(distances, flows)):
            score = self.alpha * context.normalize_distance(dist) + (
                1.0 - self.alpha
            ) * context.normalize_flow(flow)
            key = (score, dist, flow)
            if best is None or key < best:
                best = key
                best_index = i
        return FSPResult(
            path=tuple(paths[best_index]),
            distance=distances[best_index],
            flow=flows[best_index],
            score=best[0],
            shortest_distance=spdis,
            num_candidates=len(paths),
            num_pruned=rejected,
            truncated=truncated,
        )
