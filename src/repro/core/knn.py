"""Flow-aware k-nearest-neighbour queries over an FRN.

The paper motivates FSPQ with downstream tasks like ridesharing
recommendation: "find the k best pickup points / POIs considering both
distance and congestion".  This module answers that query on top of any
FSPQ engine:

1. **spatial prefilter** — rank the POI set by exact spatial distance
   using the engine's oracle (one vectorised ``distance_many`` call when
   the oracle supports it, scalar label lookups otherwise) and keep the
   closest ``prefilter`` candidates;
2. **flow-aware rerank** — evaluate a full FSPQ for each survivor and
   return the ``k`` with the smallest flow-aware score.

The prefilter is the standard kNN-over-index pattern (IER-style); a POI
outside the prefilter could in principle win under extreme congestion, so
``prefilter`` trades exactness of the *flow-aware* ranking for speed and
is reported in the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.errors import QueryError

__all__ = ["KNNMatch", "flow_aware_knn"]


@dataclass(frozen=True)
class KNNMatch:
    """One ranked POI with its flow-aware route."""

    poi: int
    rank: int
    result: FSPResult


def flow_aware_knn(
    engine: FlowAwareEngine,
    source: int,
    pois: list[int],
    k: int,
    timestep: int,
    prefilter: int | None = None,
) -> list[KNNMatch]:
    """The ``k`` flow-aware nearest POIs from ``source`` at ``timestep``.

    Parameters
    ----------
    engine:
        Any configured :class:`FlowAwareEngine`; its oracle drives the
        spatial prefilter, its α/η_u drive the final ranking.
    pois:
        Candidate destination vertices (duplicates are collapsed).
    k:
        Result size; fewer are returned if fewer POIs are reachable.
    prefilter:
        Spatial shortlist size (default ``max(3k, k + 4)``).
    """
    unique_pois = sorted({p for p in pois if p != source})
    if not unique_pois:
        raise QueryError("flow_aware_knn needs at least one POI != source")
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if prefilter is None:
        prefilter = max(3 * k, k + 4)
    if prefilter < k:
        raise QueryError(f"prefilter ({prefilter}) must be >= k ({k})")

    distance_many = getattr(engine.oracle, "distance_many", None)
    if callable(distance_many):
        # one vectorised probe for the whole POI set; the stable argsort
        # keeps the ascending-POI tie order of the scalar sort below.
        pois_arr = np.asarray(unique_pois, dtype=np.int64)
        dists = np.asarray(
            distance_many(np.full(pois_arr.shape, source, dtype=np.int64), pois_arr)
        )
        ranked = [unique_pois[int(i)] for i in np.argsort(dists, kind="stable")]
    else:
        ranked = sorted(
            unique_pois,
            key=lambda poi: engine.shortest_distance(source, poi),
        )
    shortlist = ranked[:prefilter]

    scored: list[tuple[float, float, int, FSPResult]] = []
    for poi in shortlist:
        result = engine.query(FSPQuery(source, poi, timestep))
        scored.append((result.score, result.distance, poi, result))
    scored.sort(key=lambda item: (item[0], item[1], item[2]))
    return [
        KNNMatch(poi=poi, rank=rank, result=result)
        for rank, (_, _, poi, result) in enumerate(scored[:k], start=1)
    ]
