"""En-route navigation sessions: the introduction's headline scenario.

The paper motivates FSPQ against deployed navigators: "they primarily
consider the traffic-flow at the time of the query ... FSPQ considers all
dynamic updates from the query location to the destination".  This module
simulates exactly that comparison:

* a :class:`NavigationSession` drives a vehicle along a planned route,
  advancing a fixed number of road segments per time slice;
* at every slice boundary the remaining route is re-evaluated under the
  *current* flows, and re-planned when a better continuation exists
  (hysteresis threshold to avoid oscillating);
* the session records the flow actually *experienced* at traversal time —
  the ground truth a static plan gets wrong.

:func:`compare_static_vs_live` runs the same trip once with the
plan-at-departure-and-never-look-again policy and once with live
re-planning, returning both logs — the quantified version of the paper's
Fig. 1 story.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import QueryError

__all__ = ["NavigationLog", "NavigationSession", "compare_static_vs_live"]


@dataclass
class NavigationLog:
    """Everything a finished (or aborted) drive recorded."""

    visited: list[int] = field(default_factory=list)
    experienced_flow: float = 0.0
    distance: float = 0.0
    replans: int = 0
    slices: int = 0
    completed: bool = False


class NavigationSession:
    """One vehicle driving with live flow-aware re-planning.

    Parameters
    ----------
    engine:
        The FSPQ engine (its FRN supplies per-slice flows; its α/η_u shape
        the route choice).
    source, target:
        Trip endpoints.
    departure:
        Departure slice.
    hops_per_slice:
        Road segments traversed per slice (vehicle speed proxy).
    replan_threshold:
        Re-plan only when the fresh plan's score improves on the remaining
        current plan's score by more than this margin (hysteresis).
    """

    def __init__(
        self,
        engine: FlowAwareEngine,
        source: int,
        target: int,
        departure: int = 0,
        hops_per_slice: int = 4,
        replan_threshold: float = 0.02,
    ) -> None:
        frn = engine.frn
        FSPQuery(source, target, departure % max(1, frn.num_timesteps)).validated(
            frn.num_vertices, frn.num_timesteps
        )
        if hops_per_slice < 1:
            raise QueryError(f"hops_per_slice must be >= 1, got {hops_per_slice}")
        if replan_threshold < 0:
            raise QueryError("replan_threshold must be non-negative")
        self.engine = engine
        self.source = source
        self.target = target
        self.departure = departure
        self.hops_per_slice = hops_per_slice
        self.replan_threshold = replan_threshold

    # ------------------------------------------------------------------
    def _slice_at(self, step: int) -> int:
        return (self.departure + step) % self.engine.frn.num_timesteps

    def _tail_flow(self, tail: list[int], t: int) -> float:
        vector = self.engine.frn.predicted_at(t)
        return float(sum(vector[v] for v in tail))

    def drive(self, replan: bool = True, max_slices: int = 10_000) -> NavigationLog:
        """Run the trip to completion (or until ``max_slices``).

        Re-planning rule: at each slice, if a fresh flow-aware plan from
        the current position carries at least ``replan_threshold`` (as a
        relative fraction) less flow than the remaining current plan under
        the *current* slice's flows, switch to it.
        """
        frn = self.engine.frn
        log = NavigationLog()
        t = self._slice_at(0)
        plan = list(
            self.engine.query(FSPQuery(self.source, self.target, t)).path
        )
        position = 0  # index into plan
        log.visited.append(plan[0])
        log.experienced_flow += float(frn.predicted_at(t)[plan[0]])

        for step in range(max_slices):
            t = self._slice_at(step)
            here = plan[position]
            if replan and step > 0 and here != self.target:
                fresh = self.engine.query(FSPQuery(here, self.target, t))
                tail = plan[position:]
                if list(fresh.path) != tail:
                    tail_flow = self._tail_flow(tail, t)
                    if fresh.flow < tail_flow * (1.0 - self.replan_threshold):
                        plan = plan[:position] + list(fresh.path)
                        log.replans += 1
            # advance up to hops_per_slice segments within this slice
            for _ in range(self.hops_per_slice):
                if position == len(plan) - 1:
                    break
                previous = plan[position]
                position += 1
                vertex = plan[position]
                log.visited.append(vertex)
                log.distance += frn.graph.weight(previous, vertex)
                log.experienced_flow += float(frn.predicted_at(t)[vertex])
            log.slices = step + 1
            if position == len(plan) - 1:
                log.completed = True
                break
        return log


def compare_static_vs_live(
    engine: FlowAwareEngine,
    source: int,
    target: int,
    departure: int = 0,
    hops_per_slice: int = 4,
) -> tuple[NavigationLog, NavigationLog]:
    """Drive the same trip without and with live re-planning."""
    static = NavigationSession(
        engine, source, target, departure, hops_per_slice
    ).drive(replan=False)
    live = NavigationSession(
        engine, source, target, departure, hops_per_slice
    ).drive(replan=True)
    return static, live
