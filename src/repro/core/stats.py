"""Index introspection: the statistics the paper's figures are built from.

:func:`index_statistics` summarises a hierarchical labeling index (size,
tree shape, label distribution); :func:`compare_indexes` puts two indexes
side by side — the H2H-vs-FAHL comparison of Fig. 7(a)(b) in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.labeling.hierarchy import HierarchyIndex

__all__ = ["IndexStatistics", "index_statistics", "compare_indexes"]


@dataclass(frozen=True)
class IndexStatistics:
    """Summary of one hierarchical labeling index."""

    num_vertices: int
    num_edges: int
    treewidth: int
    treeheight: int
    label_entries: int
    position_entries: int
    total_entries: int
    bytes_estimate: int
    mean_label_length: float
    max_label_length: int
    mean_bag_size: float
    root_subtree_fanout: int

    def as_rows(self) -> list[tuple[str, object]]:
        """(name, value) pairs for table rendering."""
        return [
            ("vertices", self.num_vertices),
            ("edges", self.num_edges),
            ("treewidth", self.treewidth),
            ("treeheight", self.treeheight),
            ("label entries", self.label_entries),
            ("position entries", self.position_entries),
            ("total entries", self.total_entries),
            ("approx bytes", self.bytes_estimate),
            ("mean label length", round(self.mean_label_length, 2)),
            ("max label length", self.max_label_length),
            ("mean bag size", round(self.mean_bag_size, 2)),
            ("root fanout", self.root_subtree_fanout),
        ]


def index_statistics(index: HierarchyIndex) -> IndexStatistics:
    """Compute summary statistics for an H2H/FAHL index."""
    label_lengths = np.asarray([len(lbl) for lbl in index.labels])
    position_lengths = np.asarray([len(p) for p in index.positions])
    bag_sizes = np.asarray([len(bag) for bag in index.elim.bags])
    return IndexStatistics(
        num_vertices=index.graph.num_vertices,
        num_edges=index.graph.num_edges,
        treewidth=index.treewidth,
        treeheight=index.treeheight,
        label_entries=int(label_lengths.sum()),
        position_entries=int(position_lengths.sum()),
        total_entries=int(label_lengths.sum() + position_lengths.sum()),
        bytes_estimate=index.index_size_bytes(),
        mean_label_length=float(label_lengths.mean()) if len(label_lengths) else 0.0,
        max_label_length=int(label_lengths.max()) if len(label_lengths) else 0,
        mean_bag_size=float(bag_sizes.mean()) if len(bag_sizes) else 0.0,
        root_subtree_fanout=len(index.tree.children[index.tree.root]),
    )


def compare_indexes(
    baseline: HierarchyIndex,
    candidate: HierarchyIndex,
) -> dict[str, float]:
    """Relative size/shape of ``candidate`` vs ``baseline`` (ratios).

    Values below 1.0 mean the candidate is smaller — the paper's claim for
    FAHL vs H2H on flow-skewed networks.
    """
    a = index_statistics(baseline)
    b = index_statistics(candidate)

    def ratio(x: float, y: float) -> float:
        return float(y / x) if x else float("inf")

    return {
        "entries_ratio": ratio(a.total_entries, b.total_entries),
        "bytes_ratio": ratio(a.bytes_estimate, b.bytes_estimate),
        "treewidth_ratio": ratio(a.treewidth, b.treewidth),
        "treeheight_ratio": ratio(a.treeheight, b.treeheight),
        "mean_label_ratio": ratio(a.mean_label_length, b.mean_label_length),
    }
