"""Flat single-query FSPQ kernel over the packed label arena.

A scalar FSPQ query spends ~80% of its time in Yen spur searches, and each
spur search spends most of *its* time in per-vertex Python work: heuristic
calls into the oracle, dict-based distance maps, and banned-edge set
construction that rescans every accepted path.  :class:`FlatQueryKernel`
keeps the exact algorithm — the candidate stream is **bit-identical** to
:func:`repro.paths.yen.iter_shortest_paths` driven by an
:class:`~repro.paths.astar_search.OracleHeuristic` — but restructures the
state so the per-vertex work collapses:

* the A* heuristic ``h(v) = dis(v, target)`` becomes one vectorised
  one-to-all gather (:meth:`HierarchyIndex.distances_to` over the packed
  :class:`~repro.labeling.arena.LabelArena`) instead of one scalar label
  scan per visited vertex, cached per target;
* A* runs on a prebuilt adjacency list (``neighbor_items`` order preserved,
  undirected edge ids precomputed) with stamped distance/parent arrays —
  no dict lookups, no per-search allocation;
* Yen's banned-edge sets are maintained incrementally per accepted prefix
  (``prefix_state``) instead of rescanning all accepted paths each round,
  and spur searches are memoized on ``(root, banned-set version)`` so a
  repeated deviation point is never searched twice;
* a one-step lookahead lower bound skips spur searches that provably
  cannot yield a candidate within the distance bound or within the
  consumer's remaining pull budget.

Every optimisation above is output-invariant: memoized searches are
replayed under identical inputs, and a skipped spur search's candidate
could never have been popped from the deviation frontier within the pull
budget (its total is at least the lookahead bound, and at least
``remaining`` queued candidates are no worse).  The property tests in
``tests/test_property_flat_kernel.py`` pin this down against the scalar
path, including straight after ILU/ISU/GSU maintenance.

The kernel snapshots ``index.label_version`` at build time; the engine
rebuilds it whenever the version moves, so maintenance transparently
invalidates the cached adjacency, heuristics and memo tables.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import TYPE_CHECKING, Iterator

from repro.paths.scoring import path_flow

if TYPE_CHECKING:  # circular-import guard: hierarchy is typing-only here
    from repro.core.overlay import DeltaOverlay
    from repro.graph.frn import FlowAwareRoadNetwork
    from repro.labeling.hierarchy import HierarchyIndex

__all__ = ["FlatQueryKernel"]

_INF = math.inf


class FlatQueryKernel:
    """Flat-array candidate enumeration for one (index, FRN) pair.

    Parameters
    ----------
    index:
        A :class:`~repro.labeling.hierarchy.HierarchyIndex` (FAHL or H2H)
        over exactly ``frn.graph``.  Its ``distance_many`` feeds the
        heuristic tables, so the kernel's A* sees the same admissible
        heuristic values as the scalar :class:`OracleHeuristic` path.
    frn:
        The flow-aware road network the engine queries.

    Attributes
    ----------
    version:
        ``index.label_version`` at build time; :meth:`is_current` compares
        it so engines drop the kernel after any maintenance operation.
    stats:
        Monotone counters (spur searches run / memoized / skipped,
        heuristic tables built) — exported to ``repro.obs`` by the engine.
    """

    def __init__(
        self,
        index: "HierarchyIndex",
        frn: "FlowAwareRoadNetwork",
        overlay: "DeltaOverlay | None" = None,
    ) -> None:
        graph = frn.graph
        n = graph.num_vertices
        self.index = index
        self.frn = frn
        self.overlay = overlay
        self.overlay_version = overlay.version if overlay is not None else -1
        self.num_vertices = n
        self.version = index.label_version
        self.graph_version = graph.mutation_version
        # adjacency rows in neighbor_items order (A* must expand neighbours
        # in exactly the same sequence as the reference search), annotated
        # with undirected edge ids so banned-edge checks are int-set probes
        eid: dict[tuple[int, int], int] = {}
        adj: list[list[tuple[int, float, int]]] = []
        wmap: dict[tuple[int, int], float] = {}
        for u in range(n):
            row = []
            for v, w in graph.neighbor_items(u):
                key = (u, v) if u < v else (v, u)
                e = eid.get(key)
                if e is None:
                    e = eid[key] = len(eid)
                row.append((v, w, e))
                wmap[(u, v)] = w
            adj.append(row)
        self.adj = adj
        self.eid = eid
        self.wmap = wmap
        # stamped search state reused across every A* run (token bump = O(1)
        # reset); lists beat numpy here — access is scalar, not vectorised
        self._dist: list[float] = [_INF] * n
        self._prev: list[int] = [0] * n
        self._stamp: list[int] = [0] * n
        self._token = 0
        self._h_cache: dict[int, list[float]] = {}
        self._patched: set[tuple[int, int]] = set()
        self.stats = {
            "astar_runs": 0,
            "spur_memo_hits": 0,
            "spur_skips": 0,
            "heuristic_builds": 0,
        }

    def is_current(self) -> bool:
        """Whether the snapshot still matches index, graph and overlay.

        Without an overlay the graph's ``mutation_version`` is checked
        separately from the label version: an ILU that raises an
        off-shortest-path edge weight leaves every label (and so
        ``label_version``) untouched, yet the cached adjacency rows still
        hold the old weight.  With an overlay attached, every live-graph
        weight change goes through :meth:`DeltaOverlay.absorb` (which
        bumps the overlay version), so the overlay check subsumes the
        graph check and :meth:`refresh_overlay` stays the cheap resync.
        """
        if self.version != self.index.label_version:
            return False
        if self.overlay is None:
            return self.graph_version == self.frn.graph.mutation_version
        return self.overlay.version == self.overlay_version

    def refresh_overlay(self) -> None:
        """Resync adjacency weights after overlay absorbs (no full rebuild).

        Only edges the overlay tracks (now or at any point since the kernel
        was built) can have moved, so the patch is ``O(|D| · degree)``:
        update the affected adjacency rows and weight map in place, then
        drop the heuristic tables (their values are overlay-dependent).
        The spur memo lives per-enumeration, so nothing else is stale.
        """
        overlay = self.overlay
        if overlay is None or overlay.version == self.overlay_version:
            return
        graph = self.frn.graph
        candidates = set(overlay.edges) | self._patched
        for lo, hi in candidates:
            w = graph.weight(lo, hi)
            if self.wmap.get((lo, hi)) == w:
                continue
            self.wmap[(lo, hi)] = w
            self.wmap[(hi, lo)] = w
            for a, b in ((lo, hi), (hi, lo)):
                row = self.adj[a]
                for i, (v, _, e) in enumerate(row):
                    if v == b:
                        row[i] = (v, w, e)
                        break
            self._patched.add((lo, hi))
        self._h_cache.clear()
        self.overlay_version = overlay.version
        self.graph_version = graph.mutation_version

    # ------------------------------------------------------------------
    # heuristics / distances
    # ------------------------------------------------------------------
    def h_to(self, target: int) -> list[float]:
        """The admissible heuristic table toward ``target`` (cached).

        One vectorised one-to-all arena gather; entry ``h[v]`` is
        bit-identical to ``index.distance(v, target)`` (the documented
        guarantee of ``distance_many``), so A* pops vertices in exactly
        the order the scalar ``OracleHeuristic`` search would.  With a
        non-empty overlay the table instead comes from
        :meth:`DeltaOverlay.table_to` — the exact *current* distances,
        the same values the scalar path reads through
        ``OverlayOracle.heuristic`` — keeping the two candidate streams
        aligned under continuous updates.
        """
        h = self._h_cache.get(target)
        if h is None:
            if len(self._h_cache) >= 128:
                self._h_cache.clear()
            if self.overlay is not None and not self.overlay.is_empty:
                h = self.overlay.table_to(target).tolist()
            else:
                h = self.index.distances_to(target).tolist()
            self._h_cache[target] = h
            self.stats["heuristic_builds"] += 1
        return h

    def distance(self, u: int, v: int) -> float:
        """Exact ``SPDis(u, v)``, served from a cached table when one exists."""
        h = self._h_cache.get(v)
        if h is not None:
            return h[u]
        if self.overlay is not None and not self.overlay.is_empty:
            return self.h_to(v)[u]
        return self.index.distance(u, v)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _astar(
        self,
        source: int,
        target: int,
        h: list[float],
        banned_v: frozenset[int],
        banned_e: frozenset[int] | set[int],
        cutoff: float,
    ) -> tuple[list[int] | None, float]:
        """A* on the flat adjacency; mirrors ``astar_path`` operation for
        operation (same pops, same pushes, same tie-breaking)."""
        if source in banned_v or target in banned_v:
            return None, _INF
        self.stats["astar_runs"] += 1
        adj = self.adj
        dist = self._dist
        prev = self._prev
        stamp = self._stamp
        self._token += 1
        token = self._token
        dist[source] = 0.0
        stamp[source] = token
        heap: list[tuple[float, float, int]] = [(h[source], 0.0, source)]
        pop = heapq.heappop
        push = heapq.heappush
        while heap:
            f, d, u = pop(heap)
            if f > cutoff:
                break
            if u == target:
                path = [target]
                x = target
                while x != source:
                    x = prev[x]
                    path.append(x)
                path.reverse()
                return path, d
            if stamp[u] == token and d > dist[u]:
                continue
            for v, w, e in adj[u]:
                if v in banned_v or e in banned_e:
                    continue
                nd = d + w
                if stamp[v] != token or nd < dist[v]:
                    dist[v] = nd
                    stamp[v] = token
                    prev[v] = u
                    est = nd + h[v]
                    if est <= cutoff:
                        push(heap, (est, nd, v))
        return None, _INF

    def iter_paths(
        self,
        source: int,
        target: int,
        max_distance: float,
        max_pulls: int | None = None,
    ) -> Iterator[tuple[list[int], float]]:
        """Loopless paths in non-decreasing distance order (lazy Yen).

        The yielded ``(path, distance)`` stream is bit-identical to
        :func:`repro.paths.yen.iter_shortest_paths` under an oracle
        heuristic.  ``max_pulls`` is the consumer's pull budget (the
        engine pulls at most ``max_candidates + 1`` paths); it only
        enables the frontier-budget spur skip and never changes which
        paths are produced within the budget.
        """
        h = self.h_to(target)
        empty: frozenset[int] = frozenset()
        best, best_dist = self._astar(source, target, h, empty, empty, max_distance)
        if not best or best_dist > max_distance:
            return
        yield best, best_dist
        yielded = 1
        accepted_last = best
        seen = {tuple(best)}
        # per accepted-prefix deviation state: [banned edge ids, version];
        # the version makes (root, version) a sound memo key for spur runs
        prefix_state: dict[tuple[int, ...], list] = {}
        wmap = self.wmap
        eid = self.eid

        def add_accepted(path: list[int]) -> None:
            tp = tuple(path)
            for i in range(len(path) - 1):
                key = tp[:i + 1]
                s = prefix_state.get(key)
                if s is None:
                    s = prefix_state[key] = [set(), 0]
                a, b = path[i], path[i + 1]
                e = eid[(a, b) if a < b else (b, a)]
                if e not in s[0]:
                    s[0].add(e)
                    s[1] += 1

        add_accepted(best)
        frontier: list[tuple[float, int, list[int]]] = []
        totals: list[float] = []  # frontier totals, sorted (budget skip)
        counter = 0
        memo: dict[tuple, tuple[list[int] | None, float]] = {}
        stats = self.stats
        while True:
            base = accepted_last
            tbase = tuple(base)
            remaining = None if max_pulls is None else max_pulls - yielded
            prefix_cost = 0.0
            for i in range(len(base) - 1):
                spur = base[i]
                root = tbase[:i + 1]
                s = prefix_state.get(root)
                banned_e = s[0] if s is not None else empty
                ver = s[1] if s is not None else 0
                mkey = (root, ver)
                hit = memo.get(mkey)
                if hit is None:
                    # one-step lookahead lower bound on any spur deviation:
                    # the cheapest allowed first hop plus its exact
                    # remaining distance (h is exact, hence tight)
                    lb = _INF
                    rootset = set(root[:-1])
                    for v, w, e in self.adj[spur]:
                        if e not in banned_e and v not in rootset:
                            est = w + h[v]
                            if est < lb:
                                lb = est
                    lb += prefix_cost
                    if lb > max_distance or (
                        remaining is not None
                        and len(totals) >= remaining
                        and totals[remaining - 1] <= lb
                    ):
                        # either no deviation fits the distance bound, or
                        # >= remaining queued candidates are no worse than
                        # this spur's best possible total — it could never
                        # be popped within the consumer's budget
                        stats["spur_skips"] += 1
                        prefix_cost += wmap[(base[i], base[i + 1])]
                        continue
                    hit = self._astar(
                        spur, target, h, frozenset(rootset), banned_e,
                        max_distance - prefix_cost,
                    )
                    memo[mkey] = hit
                else:
                    stats["spur_memo_hits"] += 1
                spur_path, spur_dist = hit
                if spur_path:
                    total = prefix_cost + spur_dist
                    if total <= max_distance:
                        candidate = list(root[:-1]) + spur_path
                        key = tuple(candidate)
                        if key not in seen:
                            seen.add(key)
                            counter += 1
                            heapq.heappush(frontier, (total, counter, candidate))
                            bisect.insort(totals, total)
                prefix_cost += wmap[(base[i], base[i + 1])]
            if not frontier:
                return
            dist, _, path = heapq.heappop(frontier)
            totals.pop(bisect.bisect_left(totals, dist))
            accepted_last = path
            add_accepted(path)
            yield path, dist
            yielded += 1
            if max_pulls is not None and yielded >= max_pulls:
                return

    # ------------------------------------------------------------------
    # candidate collection (the engine's two consumer shapes)
    # ------------------------------------------------------------------
    def collect_eager(
        self,
        source: int,
        target: int,
        max_distance: float,
        flow_vector,
        max_candidates: int,
    ) -> tuple[list[list[int]], list[float], list[float], bool, bool]:
        """Capped full enumeration — mirrors the engine's eager collector."""
        paths: list[list[int]] = []
        distances: list[float] = []
        flows: list[float] = []
        truncated = False
        for path, dist in self.iter_paths(
            source, target, max_distance, max_pulls=max_candidates + 1
        ):
            if len(paths) == max_candidates:
                truncated = True
                break
            paths.append(path)
            distances.append(dist)
            flows.append(path_flow(flow_vector, path))
        return paths, distances, flows, truncated, False

    def collect_lazy(
        self,
        source: int,
        target: int,
        spdis: float,
        max_distance: float,
        flow_vector,
        alpha: float,
        max_candidates: int,
        min_candidates: int,
    ) -> tuple[list[list[int]], list[float], list[float], bool, bool]:
        """Lazy enumeration with the score-dominance stop (FAHL-W).

        Same float arithmetic and the same stop test as the engine's
        scalar collector, so the collected prefix is identical.
        """
        dist_range = max_distance - spdis
        paths: list[list[int]] = []
        distances: list[float] = []
        flows: list[float] = []
        truncated = False
        early_stopped = False

        def best_score() -> float:
            flow_min = min(flows)
            flow_max = max(flows)
            flow_range = flow_max - flow_min
            best = _INF
            for dist, flow in zip(distances, flows):
                d_term = (dist - spdis) / dist_range if dist_range > 0 else 0.0
                f_term = (flow - flow_min) / flow_range if flow_range > 0 else 0.0
                score = alpha * d_term + (1.0 - alpha) * f_term
                if score < best:
                    best = score
            return best

        for path, dist in self.iter_paths(
            source, target, max_distance, max_pulls=max_candidates + 1
        ):
            if len(paths) == max_candidates:
                truncated = True
                break
            if len(paths) >= min_candidates:
                d_term = (dist - spdis) / dist_range if dist_range > 0 else 0.0
                if alpha * d_term > best_score():
                    early_stopped = True
                    break
            paths.append(path)
            distances.append(dist)
            flows.append(path_flow(flow_vector, path))
        return paths, distances, flows, truncated, early_stopped
