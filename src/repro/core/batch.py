"""Batch FSPQ evaluation with cross-query caching.

Interactive engines answer one query at a time; offline consumers (the
experiment harness, kNN reranking, fleet re-planning) throw hundreds of
queries at the same index.  Two cheap levers make batches faster without
touching results:

* :class:`MemoizedOracle` — wraps any distance oracle with a symmetric
  pair cache.  Candidate generation probes ``distance(v, target)`` for
  many ``v`` per query; queries sharing a target (kNN! navigation
  sessions!) hit the cache across calls.
* :func:`batch_query` — evaluates a list of queries grouped by target so
  the memoisation (and the engine's per-slice flow cache) is maximally
  effective, then restores the caller's original order.
"""

from __future__ import annotations

from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.errors import QueryError

__all__ = ["MemoizedOracle", "batch_query"]


class MemoizedOracle:
    """A symmetric ``distance`` cache around any oracle.

    The cache is only valid while the underlying graph/index is unchanged;
    call :meth:`invalidate` after any maintenance operation.
    """

    def __init__(self, oracle) -> None:
        if oracle is None or not callable(getattr(oracle, "distance", None)):
            raise QueryError("MemoizedOracle needs an oracle with .distance")
        self._oracle = oracle
        self._cache: dict[tuple[int, int], float] = {}
        self.hits = 0
        self.misses = 0

    def distance(self, u: int, v: int) -> float:
        key = (u, v) if u <= v else (v, u)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = self._oracle.distance(u, v)
        self._cache[key] = value
        return value

    def path(self, u: int, v: int) -> list[int]:
        """Paths are delegated uncached (rarely repeated verbatim)."""
        if not callable(getattr(self._oracle, "path", None)):
            raise QueryError("underlying oracle has no .path")
        return self._oracle.path(u, v)

    def invalidate(self) -> None:
        """Drop the cache (after index/graph maintenance)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


def batch_query(
    engine: FlowAwareEngine,
    queries: list[FSPQuery],
) -> list[FSPResult]:
    """Evaluate ``queries`` with target-grouped ordering and a shared cache.

    Results align with the input order.  The engine's oracle is wrapped in
    a :class:`MemoizedOracle` for the duration of the batch (restored
    afterwards); with ``oracle=None`` engines the call degrades to a plain
    loop.
    """
    if not queries:
        return []
    original_oracle = engine.oracle
    if original_oracle is not None and not isinstance(
        original_oracle, MemoizedOracle
    ):
        engine.oracle = MemoizedOracle(original_oracle)
    try:
        order = sorted(
            range(len(queries)),
            key=lambda i: (queries[i].target, queries[i].timestep),
        )
        results: list[FSPResult | None] = [None] * len(queries)
        for i in order:
            results[i] = engine.query(queries[i])
        return results  # type: ignore[return-value]
    finally:
        engine.oracle = original_oracle
