"""Batch FSPQ evaluation: cross-query caching, bulk prefetch, process pool.

Interactive engines answer one query at a time; offline consumers (the
experiment harness, kNN reranking, fleet re-planning) throw hundreds of
queries at the same index.  Three levers make batches faster without
touching results:

* :class:`MemoizedOracle` — wraps any distance oracle with a symmetric
  pair cache.  Candidate generation probes ``distance(v, target)`` for
  many ``v`` per query; queries sharing a target (kNN! navigation
  sessions!) hit the cache across calls.  When the underlying oracle
  supports ``distance_many`` (the label-arena fast path), the cache can
  be bulk-filled with one vectorised call via :meth:`~MemoizedOracle.prefetch`.
* :func:`batch_query` — evaluates a list of queries grouped by target so
  the memoisation (and the engine's per-slice flow cache) is maximally
  effective, bulk-prefetching each target's distances, then restores the
  caller's original order.
* ``batch_query(..., workers=N)`` — fans contiguous chunks of the
  target-grouped order out to a ``fork`` multiprocessing pool.  The built
  index is shared with the workers copy-on-write (nothing is pickled on
  the way in), results come back in input order, and the values are
  bit-identical to the serial path — memoisation and parallelism are both
  transparent.

The pool path is *hardened*: every degradation is observable (pass a
:class:`BatchReport` to collect the structured reason, or watch the
``repro.batch`` logger), each chunk has a wall-clock timeout, and a chunk
whose worker dies or hangs is transparently re-executed serially in the
parent — one crashed child can no longer lose (or hang) the whole batch.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.obs import context as obs_context
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.errors import QueryError, ReproError

__all__ = ["BatchReport", "MemoizedOracle", "batch_query", "set_worker_fault_hook"]

logger = logging.getLogger("repro.batch")

#: whole-vertex-set prefetch per distinct batch target is capped here —
#: beyond it the speculative pairs would outweigh the vectorisation win.
_PREFETCH_MAX_VERTICES = 100_000


class MemoizedOracle:
    """A symmetric ``distance`` cache around any oracle.

    The cache is only valid while the underlying graph/index is unchanged;
    call :meth:`invalidate` after any maintenance operation.
    """

    def __init__(self, oracle) -> None:
        if oracle is None or not callable(getattr(oracle, "distance", None)):
            raise QueryError("MemoizedOracle needs an oracle with .distance")
        self._oracle = oracle
        self._cache: dict[tuple[int, int], float] = {}
        self.hits = 0
        self.misses = 0

    @property
    def wrapped(self):
        """The oracle being memoised.

        The engine's flat-kernel probe unwraps through this so the
        batch path's per-call wrapper swap never demotes flat-kernel
        queries to the scalar reference.
        """
        return self._oracle

    def distance(self, u: int, v: int) -> float:
        key = (u, v) if u <= v else (v, u)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = self._oracle.distance(u, v)
        self._cache[key] = value
        return value

    def distance_many(self, sources, targets) -> np.ndarray:
        """Vectorised ``distance`` over aligned arrays, filling the cache.

        Cached pairs are served from the cache; the rest go to the
        underlying oracle's ``distance_many`` in one call when it has one
        (a scalar loop otherwise), and land in the cache on the way out.
        """
        us = np.asarray(sources, dtype=np.int64)
        vs = np.asarray(targets, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise QueryError(
                "distance_many needs 1-D source/target arrays of equal length"
            )
        out = np.empty(us.shape, dtype=np.float64)
        cache = self._cache
        missing: list[int] = []
        for i, (u, v) in enumerate(zip(us.tolist(), vs.tolist())):
            key = (u, v) if u <= v else (v, u)
            cached = cache.get(key)
            if cached is None:
                missing.append(i)
            else:
                self.hits += 1
                out[i] = cached
        if missing:
            self.misses += len(missing)
            idx = np.asarray(missing, dtype=np.int64)
            inner = getattr(self._oracle, "distance_many", None)
            if callable(inner):
                values = np.asarray(inner(us[idx], vs[idx]), dtype=np.float64)
            else:
                values = np.asarray(
                    [
                        self._oracle.distance(int(us[i]), int(vs[i]))
                        for i in missing
                    ],
                    dtype=np.float64,
                )
            out[idx] = values
            for i, value in zip(missing, values.tolist()):
                u, v = int(us[i]), int(vs[i])
                cache[(u, v) if u <= v else (v, u)] = value
        return out

    def prefetch(self, vertices, target) -> int:
        """Bulk-fill the cache with ``distance(v, target)`` for each ``v``.

        One vectorised call when the underlying oracle supports
        ``distance_many``.  Returns the number of newly cached pairs.
        """
        verts = np.asarray(vertices, dtype=np.int64)
        before = len(self._cache)
        self.distance_many(verts, np.full(verts.shape, int(target), dtype=np.int64))
        return len(self._cache) - before

    def path(self, u: int, v: int) -> list[int]:
        """Paths are delegated uncached (rarely repeated verbatim)."""
        if not callable(getattr(self._oracle, "path", None)):
            raise QueryError("underlying oracle has no .path")
        return self._oracle.path(u, v)

    def invalidate(self) -> None:
        """Drop the cache (after index/graph maintenance)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


# ----------------------------------------------------------------------
# chunk evaluation (shared by the serial path and the pool workers)
# ----------------------------------------------------------------------
def _evaluate_chunk(
    engine: FlowAwareEngine,
    indexed: list[tuple[int, FSPQuery]],
) -> list[tuple[int, FSPResult]]:
    """Evaluate ``(position, query)`` pairs in order, prefetching per target.

    ``indexed`` is expected in target-grouped order; when a target is
    shared by several queries of the chunk and the memoised oracle can
    reach a vectorised ``distance_many``, the whole vertex set's distances
    to that target are prefetched in one call — candidate generation and
    scoring for the group then run entirely off the cache.  Targets seen
    once skip the speculative fill (it would cost about what it saves),
    and a flat-kernel engine skips it entirely: the kernel reads the
    label arena directly, so a prefetched cache would never be consulted.
    """
    oracle = engine.oracle
    all_vertices: np.ndarray | None = None
    if (
        isinstance(oracle, MemoizedOracle)
        and callable(getattr(oracle._oracle, "distance_many", None))
        and engine._flat_kernel() is None
    ):
        n = engine.frn.num_vertices
        if n <= _PREFETCH_MAX_VERTICES:
            all_vertices = np.arange(n, dtype=np.int64)
    multiplicity = Counter(query.target for _, query in indexed)
    out: list[tuple[int, FSPResult]] = []
    last_target: int | None = None
    for position, query in indexed:
        if (
            all_vertices is not None
            and query.target != last_target
            and multiplicity[query.target] > 1
        ):
            oracle.prefetch(all_vertices, query.target)
            last_target = query.target
        out.append((position, engine.query(query)))
    return out


# ----------------------------------------------------------------------
# execution report
# ----------------------------------------------------------------------
@dataclass
class BatchReport:
    """Structured record of how one :func:`batch_query` call executed.

    Pass a fresh instance via ``batch_query(..., report=report)`` to make
    degraded throughput observable: ``mode`` tells whether the pool
    actually ran, ``fallback_reason`` carries the machine-readable cause
    when it did not (``"fork-unavailable"``, ``"pool-start-failed"``,
    ``"workers<=1"``, ``"single-query"``), and ``recovered_chunks`` counts
    chunks that lost their worker (death or timeout) and were re-executed
    serially in the parent.  Every degradation is also logged as a warning
    on the ``repro.batch`` logger.
    """

    mode: str = "serial"  # "serial" | "parallel" | "parallel-recovered"
    workers: int = 0
    chunks: int = 0
    fallback_reason: str | None = None
    recovered_chunks: int = 0
    warnings: list[str] = field(default_factory=list)

    def _warn(self, message: str) -> None:
        self.warnings.append(message)
        logger.warning("batch_query: %s", message)


def _record_batch(report: BatchReport, num_queries: int) -> None:
    """Fold one finished batch into the telemetry registry (parent side).

    Pool workers are forked children: their registry writes are
    copy-on-write copies that die with the process, so every batch metric
    is recorded here, in the parent, from the structured report.
    """
    registry = obs.get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_batch_runs_total", "batch_query invocations by execution mode"
    ).inc(mode=report.mode)
    registry.counter(
        "repro_batch_queries_total", "queries evaluated through batch_query"
    ).inc(num_queries)
    if report.fallback_reason:
        registry.counter(
            "repro_batch_fallbacks_total",
            "batches degraded to the serial path, by reason",
        ).inc(reason=report.fallback_reason)
    if report.recovered_chunks:
        registry.counter(
            "repro_batch_worker_recoveries_total",
            "pool chunks re-executed serially after a worker death or hang",
        ).inc(report.recovered_chunks)


def _observe_chunk(mode: str, seconds: float) -> None:
    registry = obs.get_registry()
    if registry.enabled:
        registry.histogram(
            "repro_batch_chunk_seconds",
            "per-chunk wall time by execution mode",
        ).observe(seconds, mode=mode)


def _count_chunk_failure(kind: str) -> None:
    registry = obs.get_registry()
    if registry.enabled:
        registry.counter(
            "repro_batch_chunk_failures_total",
            "pool chunks lost to a timeout or worker error",
        ).inc(kind=kind)


# ----------------------------------------------------------------------
# fork pool plumbing
# ----------------------------------------------------------------------
_WORKER_ENGINE: FlowAwareEngine | None = None

#: Test seam (see :class:`repro.testing.faults.WorkerFault`): a callable
#: invoked inside each worker with the chunk's query positions before
#: evaluation.  Installed in the parent pre-fork; inherited copy-on-write.
_WORKER_FAULT_HOOK: Callable[[list[int]], None] | None = None

#: Default wall-clock budget per chunk before the parent stops waiting on
#: the pool and re-executes the remaining chunks serially.
DEFAULT_CHUNK_TIMEOUT = 120.0


def set_worker_fault_hook(hook: Callable[[list[int]], None] | None) -> None:
    """Install (or clear) the worker fault hook — chaos tests only."""
    global _WORKER_FAULT_HOOK
    _WORKER_FAULT_HOOK = hook


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` when unsupported.

    ``fork`` is the only start method that shares the parent's built index
    with the workers copy-on-write; ``spawn`` would re-pickle the whole
    engine per worker, which defeats the point.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _init_worker(engine: FlowAwareEngine) -> None:
    # runs in the forked child: `engine` is the child's copy-on-write copy,
    # so wrapping its oracle never touches the parent's engine.
    global _WORKER_ENGINE
    if engine.oracle is not None and not isinstance(engine.oracle, MemoizedOracle):
        engine.oracle = MemoizedOracle(engine.oracle)
    _WORKER_ENGINE = engine
    # the child inherited the parent's tracer object (and possibly its
    # file-sink descriptor) copy-on-write; writing to it would interleave
    # with the parent.  Worker spans instead go through the per-chunk
    # collecting tracer installed by _run_worker_chunk and are shipped
    # back with the chunk's results.
    obs.set_tracer(None)


def _run_worker_chunk(
    chunk: list[tuple[int, FSPQuery]],
    chunk_index: int = 0,
    wire: dict | None = None,
) -> tuple[list[tuple[int, FSPResult]], list[dict] | None]:
    """Evaluate one chunk in a pool worker; returns ``(pairs, events)``.

    ``wire`` is the parent's serialized :func:`repro.obs.current_wire`
    snapshot.  When present, the worker adopts the request context, opens
    a ``batch.chunk`` span parented under the parent's in-flight span, and
    collects every span emitted during evaluation into an in-memory tracer
    whose ids are namespaced by pid — the events ride back with the chunk
    results and the parent re-emits them, yielding one stitched trace
    across the process boundary.
    """
    if _WORKER_FAULT_HOOK is not None:
        _WORKER_FAULT_HOOK([position for position, _ in chunk])
    if wire is None:
        return _evaluate_chunk(_WORKER_ENGINE, chunk), None
    # pid + chunk index: unique even when one worker serves several chunks
    collector = obs.Tracer(id_prefix=f"w{os.getpid():x}.{chunk_index}.")
    previous = obs.set_tracer(collector)
    try:
        with obs_context.activate_wire(wire):
            with obs.trace(
                "batch.chunk", chunk=chunk_index, queries=len(chunk)
            ):
                pairs = _evaluate_chunk(_WORKER_ENGINE, chunk)
    finally:
        obs.set_tracer(previous)
    return pairs, collector.events


def _evaluate_serial(
    engine: FlowAwareEngine,
    indexed: list[tuple[int, FSPQuery]],
) -> list[tuple[int, FSPResult]]:
    """Evaluate a chunk in-process with the oracle memoised for the call."""
    original_oracle = engine.oracle
    if original_oracle is not None and not isinstance(
        original_oracle, MemoizedOracle
    ):
        engine.oracle = MemoizedOracle(original_oracle)
    try:
        return _evaluate_chunk(engine, indexed)
    finally:
        engine.oracle = original_oracle


def _run_parallel(
    engine: FlowAwareEngine,
    indexed: list[tuple[int, FSPQuery]],
    workers: int,
    chunk_timeout: float,
    report: BatchReport,
) -> list[tuple[int, FSPResult]] | None:
    """Evaluate via a fork pool; ``None`` means "use the serial path".

    Chunks are contiguous slices of the target-grouped order (so each
    worker's cache still sees its targets grouped), a few per worker for
    load balance.  The parent waits at most ``chunk_timeout`` seconds per
    chunk: a chunk whose worker died, hung, or raised anything other than a
    library error is re-executed serially in the parent, so a crashed child
    degrades one chunk's latency instead of losing the batch.  Library
    errors (:class:`~repro.errors.ReproError`, e.g. a genuinely malformed
    query) propagate exactly as they would from the serial loop.
    """
    context = _fork_context()
    if context is None:
        report.fallback_reason = "fork-unavailable"
        report._warn("fork start method unavailable; falling back to serial")
        return None
    workers = min(workers, len(indexed))
    num_chunks = min(len(indexed), workers * 4)
    size = math.ceil(len(indexed) / num_chunks)
    chunks = [indexed[i:i + size] for i in range(0, len(indexed), size)]
    report.chunks = len(chunks)
    report.workers = workers
    try:
        pool = context.Pool(
            processes=workers, initializer=_init_worker, initargs=(engine,)
        )
    except (OSError, RuntimeError, ValueError) as exc:
        report.fallback_reason = "pool-start-failed"
        report._warn(f"fork pool failed to start ({exc!r}); falling back to serial")
        return None

    # snapshot the request context once per batch: workers adopt it and
    # ship their spans back with the chunk results (see _run_worker_chunk)
    tracer = obs.get_tracer()
    wire = obs_context.current_wire() if tracer is not None else None

    def _absorb(chunk_result) -> list[tuple[int, FSPResult]]:
        chunk_pairs, events = chunk_result
        if events and tracer is not None:
            for event in events:
                tracer.emit(event)
        return chunk_pairs

    pairs: list[tuple[int, FSPResult]] = []
    failed: list[int] = []
    bailed = False
    try:
        handles = [
            pool.apply_async(_run_worker_chunk, (chunk, i, wire))
            for i, chunk in enumerate(chunks)
        ]
        deadline = time.monotonic() + chunk_timeout
        for i, handle in enumerate(handles):
            if bailed:
                # after the first loss we stop waiting: grab whatever is
                # already finished, recover the rest serially.
                if not handle.ready():
                    failed.append(i)
                    continue
                try:
                    pairs.extend(_absorb(handle.get(0)))
                except ReproError:
                    raise
                except Exception:
                    failed.append(i)
                continue
            wait_start = time.perf_counter()
            try:
                pairs.extend(
                    _absorb(handle.get(max(0.0, deadline - time.monotonic())))
                )
                _observe_chunk("parallel", time.perf_counter() - wait_start)
                # chunks run concurrently: give the next handle a fresh
                # window from the moment we start waiting on it.
                deadline = time.monotonic() + chunk_timeout
            except multiprocessing.TimeoutError:
                failed.append(i)
                bailed = True
                _count_chunk_failure("timeout")
                report._warn(
                    f"chunk {i} missed its {chunk_timeout:.1f}s deadline "
                    "(dead or hung worker?); recovering serially"
                )
            except ReproError:
                # a genuine library error (malformed query, disconnected
                # pair): identical semantics to the serial loop.
                raise
            except Exception as exc:
                failed.append(i)
                bailed = True
                _count_chunk_failure("error")
                report._warn(
                    f"chunk {i} failed in the pool ({exc!r}); recovering serially"
                )
    finally:
        # terminate rather than close+join: join would wait forever on a
        # hung or dead worker, which is exactly what we are defending against.
        pool.terminate()
        pool.join()

    for i in failed:
        recover_start = time.perf_counter()
        pairs.extend(_evaluate_serial(engine, chunks[i]))
        _observe_chunk("recovered", time.perf_counter() - recover_start)
    report.recovered_chunks = len(failed)
    report.mode = "parallel-recovered" if failed else "parallel"
    return pairs


def batch_query(
    engine: FlowAwareEngine,
    queries: list[FSPQuery],
    workers: int = 1,
    chunk_timeout: float = DEFAULT_CHUNK_TIMEOUT,
    report: BatchReport | None = None,
) -> list[FSPResult]:
    """Evaluate ``queries`` with target-grouped ordering and a shared cache.

    Results align with the input order.  The engine's oracle is wrapped in
    a :class:`MemoizedOracle` for the duration of the batch (restored
    afterwards); with ``oracle=None`` engines the call degrades to a plain
    loop.

    Parameters
    ----------
    workers:
        ``1`` (default) evaluates in-process.  ``> 1`` fans contiguous
        chunks of the target-grouped order out to a ``fork``
        multiprocessing pool sharing the built index copy-on-write, and
        falls back to the serial path when ``fork`` is unavailable or the
        pool cannot start.  Both paths return bit-identical results.
    chunk_timeout:
        Wall-clock budget per pool chunk; a chunk that misses it (dead or
        hung worker) is re-executed serially in the parent.
    report:
        Optional :class:`BatchReport` instance filled in with the execution
        mode, any fallback reason, and recovery counts — the structured
        alternative to watching the ``repro.batch`` logger.
    """
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    if chunk_timeout <= 0:
        raise QueryError(f"chunk_timeout must be positive, got {chunk_timeout}")
    if report is None:
        report = BatchReport()
    if not queries:
        return []
    if obs.get_tracer() is not None:
        # one request scope per batch: serial spans nest in-process, pool
        # chunks carry the context across the fork via current_wire()
        with obs_context.request_scope():
            with obs.trace(
                "batch.query", queries=len(queries), workers=workers
            ):
                return _batch_query_impl(
                    engine, queries, workers, chunk_timeout, report
                )
    return _batch_query_impl(engine, queries, workers, chunk_timeout, report)


def _batch_query_impl(
    engine: FlowAwareEngine,
    queries: list[FSPQuery],
    workers: int,
    chunk_timeout: float,
    report: BatchReport,
) -> list[FSPResult]:
    order = sorted(
        range(len(queries)),
        key=lambda i: (queries[i].target, queries[i].timestep),
    )
    indexed = [(i, queries[i]) for i in order]
    results: list[FSPResult | None] = [None] * len(queries)

    if workers > 1 and len(queries) > 1:
        pairs = _run_parallel(engine, indexed, workers, chunk_timeout, report)
        if pairs is not None:
            for position, result in pairs:
                results[position] = result
            _record_batch(report, len(queries))
            return results  # type: ignore[return-value]
    elif workers > 1:
        report.fallback_reason = "single-query"
    else:
        report.fallback_reason = "workers<=1"

    report.mode = "serial"
    serial_start = time.perf_counter()
    for position, result in _evaluate_serial(engine, indexed):
        results[position] = result
    _observe_chunk("serial", time.perf_counter() - serial_start)
    _record_batch(report, len(queries))
    return results  # type: ignore[return-value]
