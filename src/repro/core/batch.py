"""Batch FSPQ evaluation: cross-query caching, bulk prefetch, process pool.

Interactive engines answer one query at a time; offline consumers (the
experiment harness, kNN reranking, fleet re-planning) throw hundreds of
queries at the same index.  Three levers make batches faster without
touching results:

* :class:`MemoizedOracle` — wraps any distance oracle with a symmetric
  pair cache.  Candidate generation probes ``distance(v, target)`` for
  many ``v`` per query; queries sharing a target (kNN! navigation
  sessions!) hit the cache across calls.  When the underlying oracle
  supports ``distance_many`` (the label-arena fast path), the cache can
  be bulk-filled with one vectorised call via :meth:`~MemoizedOracle.prefetch`.
* :func:`batch_query` — evaluates a list of queries grouped by target so
  the memoisation (and the engine's per-slice flow cache) is maximally
  effective, bulk-prefetching each target's distances, then restores the
  caller's original order.
* ``batch_query(..., workers=N)`` — fans contiguous chunks of the
  target-grouped order out to a ``fork`` multiprocessing pool.  The built
  index is shared with the workers copy-on-write (nothing is pickled on
  the way in), results come back in input order, and the values are
  bit-identical to the serial path — memoisation and parallelism are both
  transparent.  When ``fork`` is unavailable (or the pool cannot start)
  the call silently degrades to the serial path.
"""

from __future__ import annotations

import math
import multiprocessing
from collections import Counter

import numpy as np

from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.errors import QueryError

__all__ = ["MemoizedOracle", "batch_query"]

#: whole-vertex-set prefetch per distinct batch target is capped here —
#: beyond it the speculative pairs would outweigh the vectorisation win.
_PREFETCH_MAX_VERTICES = 100_000


class MemoizedOracle:
    """A symmetric ``distance`` cache around any oracle.

    The cache is only valid while the underlying graph/index is unchanged;
    call :meth:`invalidate` after any maintenance operation.
    """

    def __init__(self, oracle) -> None:
        if oracle is None or not callable(getattr(oracle, "distance", None)):
            raise QueryError("MemoizedOracle needs an oracle with .distance")
        self._oracle = oracle
        self._cache: dict[tuple[int, int], float] = {}
        self.hits = 0
        self.misses = 0

    def distance(self, u: int, v: int) -> float:
        key = (u, v) if u <= v else (v, u)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = self._oracle.distance(u, v)
        self._cache[key] = value
        return value

    def distance_many(self, sources, targets) -> np.ndarray:
        """Vectorised ``distance`` over aligned arrays, filling the cache.

        Cached pairs are served from the cache; the rest go to the
        underlying oracle's ``distance_many`` in one call when it has one
        (a scalar loop otherwise), and land in the cache on the way out.
        """
        us = np.asarray(sources, dtype=np.int64)
        vs = np.asarray(targets, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise QueryError(
                "distance_many needs 1-D source/target arrays of equal length"
            )
        out = np.empty(us.shape, dtype=np.float64)
        cache = self._cache
        missing: list[int] = []
        for i, (u, v) in enumerate(zip(us.tolist(), vs.tolist())):
            key = (u, v) if u <= v else (v, u)
            cached = cache.get(key)
            if cached is None:
                missing.append(i)
            else:
                self.hits += 1
                out[i] = cached
        if missing:
            self.misses += len(missing)
            idx = np.asarray(missing, dtype=np.int64)
            inner = getattr(self._oracle, "distance_many", None)
            if callable(inner):
                values = np.asarray(inner(us[idx], vs[idx]), dtype=np.float64)
            else:
                values = np.asarray(
                    [
                        self._oracle.distance(int(us[i]), int(vs[i]))
                        for i in missing
                    ],
                    dtype=np.float64,
                )
            out[idx] = values
            for i, value in zip(missing, values.tolist()):
                u, v = int(us[i]), int(vs[i])
                cache[(u, v) if u <= v else (v, u)] = value
        return out

    def prefetch(self, vertices, target) -> int:
        """Bulk-fill the cache with ``distance(v, target)`` for each ``v``.

        One vectorised call when the underlying oracle supports
        ``distance_many``.  Returns the number of newly cached pairs.
        """
        verts = np.asarray(vertices, dtype=np.int64)
        before = len(self._cache)
        self.distance_many(verts, np.full(verts.shape, int(target), dtype=np.int64))
        return len(self._cache) - before

    def path(self, u: int, v: int) -> list[int]:
        """Paths are delegated uncached (rarely repeated verbatim)."""
        if not callable(getattr(self._oracle, "path", None)):
            raise QueryError("underlying oracle has no .path")
        return self._oracle.path(u, v)

    def invalidate(self) -> None:
        """Drop the cache (after index/graph maintenance)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


# ----------------------------------------------------------------------
# chunk evaluation (shared by the serial path and the pool workers)
# ----------------------------------------------------------------------
def _evaluate_chunk(
    engine: FlowAwareEngine,
    indexed: list[tuple[int, FSPQuery]],
) -> list[tuple[int, FSPResult]]:
    """Evaluate ``(position, query)`` pairs in order, prefetching per target.

    ``indexed`` is expected in target-grouped order; when a target is
    shared by several queries of the chunk and the memoised oracle can
    reach a vectorised ``distance_many``, the whole vertex set's distances
    to that target are prefetched in one call — candidate generation and
    scoring for the group then run entirely off the cache.  Targets seen
    once skip the speculative fill (it would cost about what it saves).
    """
    oracle = engine.oracle
    all_vertices: np.ndarray | None = None
    if isinstance(oracle, MemoizedOracle) and callable(
        getattr(oracle._oracle, "distance_many", None)
    ):
        n = engine.frn.num_vertices
        if n <= _PREFETCH_MAX_VERTICES:
            all_vertices = np.arange(n, dtype=np.int64)
    multiplicity = Counter(query.target for _, query in indexed)
    out: list[tuple[int, FSPResult]] = []
    last_target: int | None = None
    for position, query in indexed:
        if (
            all_vertices is not None
            and query.target != last_target
            and multiplicity[query.target] > 1
        ):
            oracle.prefetch(all_vertices, query.target)
            last_target = query.target
        out.append((position, engine.query(query)))
    return out


# ----------------------------------------------------------------------
# fork pool plumbing
# ----------------------------------------------------------------------
_WORKER_ENGINE: FlowAwareEngine | None = None


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` when unsupported.

    ``fork`` is the only start method that shares the parent's built index
    with the workers copy-on-write; ``spawn`` would re-pickle the whole
    engine per worker, which defeats the point.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _init_worker(engine: FlowAwareEngine) -> None:
    # runs in the forked child: `engine` is the child's copy-on-write copy,
    # so wrapping its oracle never touches the parent's engine.
    global _WORKER_ENGINE
    if engine.oracle is not None and not isinstance(engine.oracle, MemoizedOracle):
        engine.oracle = MemoizedOracle(engine.oracle)
    _WORKER_ENGINE = engine


def _run_worker_chunk(
    chunk: list[tuple[int, FSPQuery]],
) -> list[tuple[int, FSPResult]]:
    return _evaluate_chunk(_WORKER_ENGINE, chunk)


def _run_parallel(
    engine: FlowAwareEngine,
    indexed: list[tuple[int, FSPQuery]],
    workers: int,
) -> list[tuple[int, FSPResult]] | None:
    """Evaluate via a fork pool; ``None`` means "use the serial path".

    Chunks are contiguous slices of the target-grouped order (so each
    worker's cache still sees its targets grouped), a few per worker for
    load balance.  Query errors raised inside a worker propagate, exactly
    as they would from the serial loop.
    """
    context = _fork_context()
    if context is None:
        return None
    workers = min(workers, len(indexed))
    num_chunks = min(len(indexed), workers * 4)
    size = math.ceil(len(indexed) / num_chunks)
    chunks = [indexed[i:i + size] for i in range(0, len(indexed), size)]
    try:
        pool = context.Pool(
            processes=workers, initializer=_init_worker, initargs=(engine,)
        )
    except (OSError, RuntimeError, ValueError):
        return None
    try:
        parts = pool.map(_run_worker_chunk, chunks)
    finally:
        pool.close()
        pool.join()
    return [pair for part in parts for pair in part]


def batch_query(
    engine: FlowAwareEngine,
    queries: list[FSPQuery],
    workers: int = 1,
) -> list[FSPResult]:
    """Evaluate ``queries`` with target-grouped ordering and a shared cache.

    Results align with the input order.  The engine's oracle is wrapped in
    a :class:`MemoizedOracle` for the duration of the batch (restored
    afterwards); with ``oracle=None`` engines the call degrades to a plain
    loop.

    Parameters
    ----------
    workers:
        ``1`` (default) evaluates in-process.  ``> 1`` fans contiguous
        chunks of the target-grouped order out to a ``fork``
        multiprocessing pool sharing the built index copy-on-write, and
        falls back to the serial path when ``fork`` is unavailable or the
        pool cannot start.  Both paths return bit-identical results.
    """
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    if not queries:
        return []
    order = sorted(
        range(len(queries)),
        key=lambda i: (queries[i].target, queries[i].timestep),
    )
    indexed = [(i, queries[i]) for i in order]
    results: list[FSPResult | None] = [None] * len(queries)

    if workers > 1 and len(queries) > 1:
        pairs = _run_parallel(engine, indexed, workers)
        if pairs is not None:
            for position, result in pairs:
                results[position] = result
            return results  # type: ignore[return-value]

    original_oracle = engine.oracle
    if original_oracle is not None and not isinstance(
        original_oracle, MemoizedOracle
    ):
        engine.oracle = MemoizedOracle(original_oracle)
    try:
        for position, result in _evaluate_chunk(engine, indexed):
            results[position] = result
        return results  # type: ignore[return-value]
    finally:
        engine.oracle = original_oracle
