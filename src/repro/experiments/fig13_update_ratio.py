"""Fig. 13: query and update time vs the update ratio λ.

λ = (#flow changes)/(#weight changes) over a fixed total budget.  H2H and
TD-G-tree only process the weight share (they cannot perceive flow), so
their update time *falls* as λ grows, while FAHL pays for both via ISU+ILU
but stays competitive — the paper's trade-off picture.
"""

from __future__ import annotations

from repro import obs
from repro.core.maintenance import apply_flow_updates, apply_weight_update
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    build_method_suite,
    time_queries,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_query_groups
from repro.workloads.updates import generate_mixed_updates

__all__ = ["run", "DEFAULT_RATIOS"]

DEFAULT_RATIOS = (0.25, 0.5, 1.0, 2.0, 4.0)

_METHODS = ("TD-G-tree", "H2H", "FAHL-W")

_TOTAL_UPDATES = 40  # scaled from the paper's 10,000


def run(
    config: ExperimentConfig,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
) -> ExperimentTable:
    """Regenerate the Fig. 13 series (query ms; total update ms)."""
    table = ExperimentTable(
        title=(
            "Fig. 13 — query time (ms) and total update time (ms) vs "
            f"update ratio ({_TOTAL_UPDATES} updates, scaled from 10k)"
        ),
        headers=["Dataset", "lambda"]
        + [f"{m} query" for m in _METHODS]
        + [f"{m} update" for m in _METHODS],
    )
    for name in config.datasets:
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        groups = generate_query_groups(
            dataset.frn,
            num_groups=config.num_groups,
            queries_per_group=config.queries_per_group,
            seed=config.seed,
        )
        queries = groups[-1]
        for ratio in ratios:
            suite = build_method_suite(dataset, config, methods=_METHODS)
            flow_updates, weight_updates = generate_mixed_updates(
                dataset.frn,
                _TOTAL_UPDATES,
                update_ratio=ratio,
                seed=config.seed,
            )
            update_ms = {}
            for method in _METHODS:
                built = suite[method]
                with obs.stopwatch(
                    metric="repro_experiment_phase_seconds",
                    span="experiment.fig13.updates",
                    phase="fig13-updates",
                    method=method,
                ) as sw:
                    for u, v, new in weight_updates:
                        if method == "TD-G-tree":
                            built.index.update_edge_weight(u, v, new)
                        else:
                            apply_weight_update(built.index, u, v, new)
                    if method == "FAHL-W":
                        apply_flow_updates(built.index, flow_updates, method="isu")
                update_ms[method] = sw.ms
            table.add_row(
                name,
                ratio,
                *(time_queries(suite[m], queries) * 1000.0 for m in _METHODS),
                *(update_ms[m] for m in _METHODS),
            )
    return table
