"""Experiment infrastructure: method suites, timing, result tables.

Every figure/table module builds a *method suite* — one engine per compared
method, each with a **private graph copy** (maintenance experiments mutate
weights, and sharing a graph across indexes would silently desynchronise
them) — runs a workload, and returns an :class:`ExperimentTable` that the
CLI prints in the paper's row/series layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import obs
from repro.baselines.astar import AStarOracle
from repro.baselines.ch import CHIndex
from repro.baselines.gtree import TDGTree
from repro.core.batch import batch_query
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import QueryError
from repro.graph.frn import FlowAwareRoadNetwork
from repro.labeling.h2h import H2HIndex
from repro.workloads.datasets import DATASET_NAMES, Dataset

__all__ = [
    "ALL_METHODS",
    "BuiltMethod",
    "ExperimentConfig",
    "ExperimentTable",
    "build_method",
    "build_method_suite",
    "format_table",
    "time_batch_queries",
    "time_queries",
]

#: Methods in the paper's comparison order.
ALL_METHODS = ("A*", "CH", "TD-G-tree", "H2H", "FAHL-O", "FAHL-W")


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for all experiments (scaled-down paper defaults)."""

    datasets: tuple[str, ...] = DATASET_NAMES
    scale: float = 0.35
    days: int = 7
    interval_minutes: int = 60
    epochs: int = 200
    num_groups: int = 12
    queries_per_group: int = 5
    alpha: float = 0.5
    beta: float = 0.5
    eta_u: float = 3.0
    max_candidates: int = 12
    seed: int = 0

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)


@dataclass
class BuiltMethod:
    """One compared method, ready to answer FSPQ queries."""

    name: str
    engine: FlowAwareEngine
    frn: FlowAwareRoadNetwork  # private graph copy inside
    index: object | None
    build_seconds: float
    index_entries: int


@dataclass
class ExperimentTable:
    """A printable experiment result (title + aligned columns)."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        self.rows.append(list(values))

    def render(self) -> str:
        return format_table(self.title, self.headers, self.rows, self.notes)

    def render_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering (for generated reports)."""

        def fmt(value: object) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) < 0.01 or abs(value) >= 1e6:
                    return f"{value:.3e}"
                return f"{value:,.3f}"
            return str(value)

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)


def format_table(
    title: str,
    headers: list[str],
    rows: list[list[object]],
    notes: list[str] | None = None,
) -> str:
    """Plain-text aligned table, matching the harness output style."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) < 0.01 or abs(value) >= 1e6:
                return f"{value:.3e}"
            return f"{value:,.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in notes or []:
        lines.append(f"# {note}")
    return "\n".join(lines)


def _private_frn(dataset: Dataset) -> FlowAwareRoadNetwork:
    """FRN over a private copy of the dataset's graph (flows shared)."""
    frn = dataset.frn
    return FlowAwareRoadNetwork(
        frn.graph.copy(),
        frn.flow,
        predicted_flow=frn.predicted_flow,
        lanes=frn.lanes,
    )


def build_method(
    name: str,
    dataset: Dataset,
    config: ExperimentConfig,
    use_capacity: bool = False,
    w_c: float = 0.5,
) -> BuiltMethod:
    """Build one method (index + engine) on a private graph copy.

    ``use_capacity`` selects the ``+`` variants of Fig. 11: FAHL orders and
    scores by the capacity-based flow Ĉ_f; the flow-blind baselines merely
    score with it (their indexes cannot perceive it, as the paper notes).
    """
    frn = _private_frn(dataset)
    index: object | None = None
    oracle = None
    pruning = "none"
    with obs.stopwatch(
        metric="repro_experiment_phase_seconds",
        span="experiment.build",
        phase="build",
        method=name,
    ) as sw:
        if name == "A*":
            oracle = AStarOracle(frn.graph)
        elif name == "Dijkstra":
            oracle = None
        elif name == "CH":
            index = CHIndex(frn.graph)
            oracle = index
        elif name == "TD-G-tree":
            index = TDGTree(frn.graph)
            oracle = index
        elif name == "H2H":
            index = H2HIndex(frn.graph)
            oracle = index
        elif name in ("FAHL-O", "FAHL-W"):
            index = FAHLIndex.from_frn(
                frn, beta=config.beta, use_capacity=use_capacity, w_c=w_c
            )
            oracle = index
            pruning = "lemma4" if name == "FAHL-W" else "none"
        else:
            raise QueryError(f"unknown method {name!r}")
    build_seconds = sw.seconds

    engine = FlowAwareEngine(
        frn,
        oracle=oracle,
        alpha=config.alpha,
        eta_u=config.eta_u,
        pruning=pruning,
        max_candidates=config.max_candidates,
        use_capacity=use_capacity,
        w_c=w_c,
    )
    entries = index.index_size_entries() if hasattr(index, "index_size_entries") else 0
    return BuiltMethod(
        name=name,
        engine=engine,
        frn=frn,
        index=index,
        build_seconds=build_seconds,
        index_entries=entries,
    )


def build_method_suite(
    dataset: Dataset,
    config: ExperimentConfig,
    methods: tuple[str, ...] = ALL_METHODS,
    use_capacity: bool = False,
    w_c: float = 0.5,
) -> dict[str, BuiltMethod]:
    """Build every requested method over the dataset.

    FAHL-O and FAHL-W intentionally *share* one index build (they are the
    same index with and without pruning), matching the paper.
    """
    suite: dict[str, BuiltMethod] = {}
    for name in methods:
        if name == "FAHL-W" and "FAHL-O" in suite:
            base = suite["FAHL-O"]
            engine = FlowAwareEngine(
                base.frn,
                oracle=base.index,
                alpha=config.alpha,
                eta_u=config.eta_u,
                pruning="lemma4",
                max_candidates=config.max_candidates,
                use_capacity=use_capacity,
                w_c=w_c,
            )
            suite[name] = BuiltMethod(
                name=name,
                engine=engine,
                frn=base.frn,
                index=base.index,
                build_seconds=base.build_seconds,
                index_entries=base.index_entries,
            )
            continue
        suite[name] = build_method(
            name, dataset, config, use_capacity=use_capacity, w_c=w_c
        )
    return suite


def time_queries(
    method: BuiltMethod,
    queries: list[FSPQuery],
) -> float:
    """Average wall-clock seconds per FSPQ query (0 if no queries)."""
    if not queries:
        return 0.0
    with obs.stopwatch(
        metric="repro_experiment_phase_seconds",
        span="experiment.queries",
        phase="queries",
        method=getattr(method, "name", "?"),  # probes may be anonymous
    ) as sw:
        for query in queries:
            method.engine.query(query)
    return sw.seconds / len(queries)


def time_batch_queries(
    method: BuiltMethod,
    queries: list[FSPQuery],
    workers: int = 1,
) -> float:
    """Average seconds per query through :func:`repro.core.batch.batch_query`.

    The batch path shares one memoised oracle across the workload
    (bulk-prefetched via ``distance_many`` when the method's index supports
    it) and can fan out to a process pool; its results are identical to
    :func:`time_queries`' per-query evaluation, so figures may use either.
    """
    if not queries:
        return 0.0
    with obs.stopwatch(
        metric="repro_experiment_phase_seconds",
        span="experiment.batch_queries",
        phase="batch-queries",
        method=getattr(method, "name", "?"),
    ) as sw:
        batch_query(method.engine, list(queries), workers=workers)
    return sw.seconds / len(queries)
