"""Incident scenario: the whole stack under correlated congestion events.

Random accidents (localised multi-vertex flow surges with temporal
ramp-down — :mod:`repro.flow.events`) stream per-slice flow updates into
FAHL's ISU maintenance while a query workload keeps running.  This is the
end-to-end "online navigation service" scenario the paper's introduction
describes, with the uniform update streams of Section VI replaced by
spatially-structured ones.
"""

from __future__ import annotations

from repro import obs
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.core.maintenance import apply_flow_updates
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    time_queries,
)
from repro.flow.events import incident_update_stream, random_incidents
from repro.graph.frn import FlowAwareRoadNetwork
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import flatten_groups, generate_query_groups

__all__ = ["run"]

_INCIDENTS = 6


class _EngineProbe:
    """Duck-typed BuiltMethod for time_queries."""

    def __init__(self, engine: FlowAwareEngine) -> None:
        self.engine = engine


def run(config: ExperimentConfig) -> ExperimentTable:
    """Stream incident updates through ISU, measuring maintenance + queries."""
    table = ExperimentTable(
        title=f"Incidents — ISU under {_INCIDENTS} correlated congestion events",
        headers=[
            "Dataset",
            "updates",
            "maintenance ms",
            "noop",
            "isu",
            "gsu",
            "ms/query before",
            "ms/query after",
        ],
    )
    for name in config.datasets:
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        base = dataset.frn
        frn = FlowAwareRoadNetwork(
            base.graph.copy(), base.flow,
            predicted_flow=base.predicted_flow, lanes=base.lanes,
        )
        index = FAHLIndex.from_frn(frn, beta=config.beta)
        engine = FlowAwareEngine(
            frn, oracle=index, alpha=config.alpha, eta_u=config.eta_u,
            pruning="lemma4", max_candidates=config.max_candidates,
        )
        queries = flatten_groups(
            generate_query_groups(
                frn,
                num_groups=min(4, config.num_groups),
                queries_per_group=config.queries_per_group,
                seed=config.seed,
            )
        )
        before_ms = time_queries(_EngineProbe(engine), queries) * 1000.0

        incidents = random_incidents(
            frn.graph, frn.num_timesteps, _INCIDENTS, seed=config.seed
        )
        stream = incident_update_stream(frn.graph, frn.predicted_flow, incidents)
        strategies = {"noop": 0, "isu": 0, "gsu": 0}
        total_updates = 0
        with obs.stopwatch(
            metric="repro_experiment_phase_seconds",
            span="experiment.incidents.maintenance",
            phase="incidents-maintenance",
        ) as sw:
            for t in sorted(stream):
                stats = apply_flow_updates(index, stream[t], method="isu")
                total_updates += len(stats)
                for stat in stats:
                    strategies[stat.strategy] += 1
        maintenance_ms = sw.ms
        engine.invalidate()
        after_ms = time_queries(_EngineProbe(engine), queries) * 1000.0

        table.add_row(
            name,
            total_updates,
            maintenance_ms,
            strategies["noop"],
            strategies["isu"],
            strategies["gsu"],
            before_ms,
            after_ms,
        )
    return table
