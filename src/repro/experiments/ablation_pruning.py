"""Ablation: pruning modes and the candidate cap.

Separates FPSPS's two levers — the Lemma-4 flow bounds (with the lazy
score-dominance stop) and the always-sound adaptive bound — and sweeps the
candidate cap, measuring time *and* answer quality for each combination.
This quantifies exactly what the Fig. 6 FAHL-W speedup costs.
"""

from __future__ import annotations

from repro import obs
from repro.analysis.quality import pruning_quality
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import PRUNING_MODES, FlowAwareEngine
from repro.experiments.runner import ExperimentConfig, ExperimentTable
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import flatten_groups, generate_query_groups

__all__ = ["run", "DEFAULT_CAPS"]

DEFAULT_CAPS = (4, 8, 16, 32)


def run(
    config: ExperimentConfig,
    caps: tuple[int, ...] = DEFAULT_CAPS,
) -> ExperimentTable:
    """Sweep pruning mode x candidate cap on the first configured dataset."""
    table = ExperimentTable(
        title="Ablation — pruning mode and candidate cap",
        headers=["pruning", "cap", "ms/query", "path agreement",
                 "mean score gap", "mean candidates"],
        notes=[
            "agreement/gap vs an unpruned engine with the largest cap "
            "(the best answer this harness can compute)",
        ],
    )
    dataset = load_dataset(
        config.datasets[0],
        scale=config.scale,
        days=config.days,
        interval_minutes=config.interval_minutes,
        epochs=config.epochs,
        seed=config.seed,
    )
    frn = dataset.frn
    index = FAHLIndex.from_frn(frn, beta=config.beta)
    queries = flatten_groups(
        generate_query_groups(
            frn,
            num_groups=config.num_groups,
            queries_per_group=config.queries_per_group,
            seed=config.seed,
        )
    )
    reference = FlowAwareEngine(
        frn, oracle=index, alpha=config.alpha, eta_u=config.eta_u,
        pruning="none", max_candidates=max(caps),
    )
    for mode in PRUNING_MODES:
        for cap in caps:
            engine = FlowAwareEngine(
                frn, oracle=index, alpha=config.alpha, eta_u=config.eta_u,
                pruning=mode, max_candidates=cap,
            )
            candidates = 0
            with obs.stopwatch(
                metric="repro_experiment_phase_seconds",
                span="experiment.ablation.queries",
                phase="ablation-queries",
                mode=mode,
            ) as sw:
                for query in queries:
                    candidates += engine.query(query).num_candidates
            per_query_ms = sw.seconds / len(queries) * 1000
            quality = pruning_quality(reference, engine, queries)
            table.add_row(
                mode,
                cap,
                per_query_ms,
                quality.path_agreement,
                quality.mean_score_gap,
                candidates / len(queries),
            )
    return table
