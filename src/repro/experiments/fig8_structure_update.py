"""Fig. 8: structure-update time, GSU vs ISU, per flow-change batch size.

Only FAHL maintains structure under flow changes (the baselines cannot
perceive flow), so the comparison is between the paper's two algorithms on
fresh FAHL indexes, with batch sizes {4, 8, 12, 16}.
"""

from __future__ import annotations

from repro import obs
from repro.core.fahl import FAHLIndex
from repro.core.maintenance import apply_flow_updates
from repro.experiments.runner import ExperimentConfig, ExperimentTable
from repro.graph.frn import FlowAwareRoadNetwork
from repro.workloads.datasets import load_dataset
from repro.workloads.updates import generate_flow_updates

__all__ = ["run", "DEFAULT_BATCHES"]

DEFAULT_BATCHES = (4, 8, 12, 16)


def run(
    config: ExperimentConfig,
    batches: tuple[int, ...] = DEFAULT_BATCHES,
) -> ExperimentTable:
    """Regenerate the Fig. 8 bars (milliseconds per update batch)."""
    table = ExperimentTable(
        title="Fig. 8 — structure update time (ms per batch of flow changes)",
        headers=["Dataset", "Changes", "GSU", "ISU", "ISU strategies"],
    )
    for name in config.datasets:
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        for batch in batches:
            updates = generate_flow_updates(
                dataset.frn, batch, timestep=0, seed=config.seed + batch
            )
            timings = {}
            strategies = ""
            for method in ("gsu", "isu"):
                frn = FlowAwareRoadNetwork(
                    dataset.frn.graph.copy(),
                    dataset.frn.flow,
                    predicted_flow=dataset.frn.predicted_flow,
                    lanes=dataset.frn.lanes,
                )
                index = FAHLIndex.from_frn(frn, beta=config.beta)
                with obs.stopwatch(
                    metric="repro_experiment_phase_seconds",
                    span="experiment.fig8.flow_updates",
                    phase="fig8-flow-updates",
                    method=method,
                ) as sw:
                    stats = apply_flow_updates(index, updates, method=method)
                timings[method] = sw.ms
                if method == "isu":
                    counts: dict[str, int] = {}
                    for stat in stats:
                        counts[stat.strategy] = counts.get(stat.strategy, 0) + 1
                    strategies = ",".join(
                        f"{k}:{v}" for k, v in sorted(counts.items())
                    )
            table.add_row(name, batch, timings["gsu"], timings["isu"], strategies)
    return table
