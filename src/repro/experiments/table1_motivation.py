"""Table I / Fig. 1: the paper's motivating example, regenerated.

Reconstructs the introduction's Beijing snippet — query location ``Q_u``,
destination ``Q_d``, vertices ``v1..v8`` with the traffic flows of
Table I — and shows the two stories the paper tells:

* the distance-optimal route ``P1 = {Q_u, v4, v5, v6, v7, Q_d}`` has
  distance 41 but path flow 87;
* the flow-aware route ``P2 = {Q_u, v1, v2, v3, v8, Q_d}`` is longer but
  carries flow 43 — and FSPQ (Eq. 1, α = 0.5) picks it.
"""

from __future__ import annotations

import numpy as np

from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.experiments.runner import ExperimentConfig, ExperimentTable
from repro.flow.series import FlowSeries
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork

__all__ = ["run", "build_motivation_frn"]

#: Table I flows: Q_u, v1..v8, Q_d
_FLOWS = [10.0, 5.0, 2.0, 4.0, 8.0, 15.0, 24.0, 20.0, 12.0, 10.0]
Q_U, Q_D = 0, 9
P1 = (Q_U, 4, 5, 6, 7, Q_D)
P2 = (Q_U, 1, 2, 3, 8, Q_D)


def build_motivation_frn() -> FlowAwareRoadNetwork:
    """The Fig. 1 network: P1 sums to distance 41, P2 is a longer detour."""
    graph = RoadNetwork(10, edges=[
        # P1: the red (shortest) route, total 41
        (Q_U, 4, 6.0), (4, 5, 8.0), (5, 6, 12.0), (6, 7, 8.0), (7, Q_D, 7.0),
        # P2: the green (low-flow) route, total 49
        (Q_U, 1, 9.0), (1, 2, 10.0), (2, 3, 10.0), (3, 8, 10.0), (8, Q_D, 10.0),
        # a cross street so the network is not two disjoint chains
        (3, 6, 15.0),
    ])
    flow = FlowSeries(np.array([_FLOWS]))
    return FlowAwareRoadNetwork(graph, flow)


def run(config: ExperimentConfig) -> ExperimentTable:
    """Regenerate the Table I comparison (config sets only alpha/eta)."""
    frn = build_motivation_frn()
    index = FAHLIndex.from_frn(frn, beta=config.beta)
    engine = FlowAwareEngine(
        frn, oracle=index, alpha=config.alpha, eta_u=config.eta_u,
        max_candidates=16,
    )
    flow_vector = frn.predicted_at(0)

    def describe(path: tuple[int, ...]) -> tuple[float, float]:
        distance = sum(
            frn.graph.weight(a, b) for a, b in zip(path, path[1:])
        )
        flow = float(sum(flow_vector[v] for v in path))
        return distance, flow

    d1, f1 = describe(P1)
    d2, f2 = describe(P2)
    result = engine.query(FSPQuery(Q_U, Q_D, 0))
    chosen = "P2" if result.path == P2 else (
        "P1" if result.path == P1 else str(list(result.path))
    )

    table = ExperimentTable(
        title="Table I / Fig. 1 — motivating example",
        headers=["route", "distance", "path flow", "role"],
        notes=[
            f"FSPQ (alpha={config.alpha}, eta_u={config.eta_u}) returns "
            f"{chosen} with FSD={result.score:.3f} — the paper's green "
            "path wins once flow matters.",
        ],
    )
    table.add_row("P1 = Qu,v4,v5,v6,v7,Qd", d1, f1, "shortest distance")
    table.add_row("P2 = Qu,v1,v2,v3,v8,Qd", d2, f2, "flow-aware optimum")
    table.add_row("FSPQ choice", result.distance, result.flow, chosen)
    return table
