"""Fig. 7(c)(d): query time vs the blend parameter α (BRN and COL, FQ12).

α weighs spatial distance against traffic flow in Eq. 1.  Only FAHL-W's
pruning reacts to α (small α ⇒ tighter Lemma-4 flow bounds ⇒ more pruning);
all other methods are essentially flat — the paper's observation.
"""

from __future__ import annotations

from repro.core.fpsps import FlowAwareEngine
from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentConfig,
    ExperimentTable,
    build_method_suite,
    time_queries,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_query_groups

__all__ = ["run", "DEFAULT_ALPHAS"]

DEFAULT_ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run(
    config: ExperimentConfig,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    datasets: tuple[str, ...] = ("BRN", "COL"),
) -> ExperimentTable:
    """Regenerate the Fig. 7(c)(d) series (ms per query on the last group)."""
    table = ExperimentTable(
        title="Fig. 7(c)(d) — query time vs alpha (FQ12, ms per query)",
        headers=["Dataset", "alpha"] + list(ALL_METHODS),
    )
    for name in datasets:
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        suite = build_method_suite(dataset, config)
        groups = generate_query_groups(
            dataset.frn,
            num_groups=config.num_groups,
            queries_per_group=config.queries_per_group,
            seed=config.seed,
        )
        queries = groups[-1]  # FQ12
        for alpha in alphas:
            times = []
            for method in ALL_METHODS:
                built = suite[method]
                # swap alpha on a fresh engine sharing the built oracle
                engine = FlowAwareEngine(
                    built.frn,
                    oracle=built.engine.oracle,
                    alpha=alpha,
                    eta_u=config.eta_u,
                    pruning=built.engine.pruning,
                    max_candidates=config.max_candidates,
                )
                probe = BuiltProbe(built, engine)
                times.append(time_queries(probe, queries) * 1000.0)
            table.add_row(name, alpha, *times)
    return table


class BuiltProbe:
    """A BuiltMethod stand-in that swaps the engine (duck-typed)."""

    def __init__(self, base, engine) -> None:
        self.name = base.name
        self.engine = engine
        self.frn = base.frn
        self.index = base.index
        self.build_seconds = base.build_seconds
        self.index_entries = base.index_entries
