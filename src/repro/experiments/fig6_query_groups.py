"""Fig. 6: FSPQ time per query group FQ1..FQ12, all datasets, all methods.

Also reports the headline aggregate — FAHL-W's average speedup over the
best baseline (H2H), the paper's "33.1% faster on average" claim.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentConfig,
    ExperimentTable,
    build_method_suite,
    time_queries,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_query_groups

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentTable:
    """Regenerate the Fig. 6 series (ms per query, one row per group)."""
    table = ExperimentTable(
        title="Fig. 6 — query time per FQ group (milliseconds per query)",
        headers=["Dataset", "Group"] + list(ALL_METHODS),
    )
    speedups: list[float] = []
    for name in config.datasets:
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        suite = build_method_suite(dataset, config)
        groups = generate_query_groups(
            dataset.frn,
            num_groups=config.num_groups,
            queries_per_group=config.queries_per_group,
            seed=config.seed,
        )
        for group_id, queries in enumerate(groups, start=1):
            times = {
                method: time_queries(suite[method], queries) * 1000.0
                for method in ALL_METHODS
            }
            table.add_row(name, f"FQ{group_id}", *(times[m] for m in ALL_METHODS))
            if times["FAHL-W"] > 0 and times["H2H"] > 0:
                speedups.append(1.0 - times["FAHL-W"] / times["H2H"])
    if speedups:
        average = 100.0 * sum(speedups) / len(speedups)
        table.notes.append(
            f"FAHL-W vs H2H average speedup: {average:.1f}% "
            "(paper reports 33.1%)."
        )
    return table
