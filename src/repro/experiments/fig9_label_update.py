"""Fig. 9: label-update time and affected labels/records per FQ group.

For each query group, an edge on a group query's shortest path is updated;
the indexes repair themselves (H2H and FAHL-W via ILU, TD-G-tree by
rebuilding the touched leaf).  Longer query groups hit more central edges,
whose shortcuts reach more labels — the paper's rising curves.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.baselines.dijkstra import dijkstra_path
from repro.core.maintenance import apply_weight_update
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    build_method_suite,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_query_groups

__all__ = ["run"]

_METHODS = ("TD-G-tree", "H2H", "FAHL-W")


def run(config: ExperimentConfig) -> ExperimentTable:
    """Regenerate the Fig. 9 series (ms and affected labels/records)."""
    table = ExperimentTable(
        title="Fig. 9 — label update time (ms) and affected labels/records",
        headers=["Dataset", "Group"]
        + [f"{m} ms" for m in _METHODS]
        + [f"{m} affected" for m in _METHODS],
    )
    rng = np.random.default_rng(config.seed)
    for name in config.datasets:
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        suite = build_method_suite(dataset, config, methods=_METHODS)
        groups = generate_query_groups(
            dataset.frn,
            num_groups=config.num_groups,
            queries_per_group=config.queries_per_group,
            seed=config.seed,
        )
        for group_id, queries in enumerate(groups, start=1):
            if not queries:
                continue
            # pick edges on the shortest paths of this group's queries
            edges: list[tuple[int, int]] = []
            for query in queries:
                path = dijkstra_path(dataset.frn.graph, query.source, query.target)
                if len(path) >= 2:
                    pick = int(rng.integers(len(path) - 1))
                    edges.append((path[pick], path[pick + 1]))
            if not edges:
                continue
            times = {m: 0.0 for m in _METHODS}
            affected = {m: 0 for m in _METHODS}
            for u, v in edges:
                factor = rng.uniform(0.5, 2.0)  # same change for every method
                for method in _METHODS:
                    built = suite[method]
                    old = built.frn.graph.weight(u, v)
                    new = float(max(1.0, round(old * factor)))
                    with obs.stopwatch(
                        metric="repro_experiment_phase_seconds",
                        span="experiment.fig9.weight_update",
                        phase="fig9-weight-update",
                        method=method,
                    ) as sw:
                        if method == "TD-G-tree":
                            records = built.index.update_edge_weight(u, v, new)
                            affected[method] += records
                        else:
                            stats = apply_weight_update(built.index, u, v, new)
                            affected[method] += stats.labels_affected
                    times[method] += sw.seconds
            scale = 1000.0 / len(edges)
            table.add_row(
                name,
                f"FQ{group_id}",
                *(times[m] * scale for m in _METHODS),
                *(affected[m] / len(edges) for m in _METHODS),
            )
    return table
