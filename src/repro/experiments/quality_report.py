"""Result-quality report: the honesty companion to the timing figures.

For each dataset this collects the three quality metrics of
:mod:`repro.analysis.quality` on the Fig. 6 workload:

* FAHL-W vs FAHL-O answer agreement (what the pruning speedup costs);
* prediction regret (extra true congestion from routing on predictions);
* congestion savings vs the spatial optimum (the Fig. 1 motivation).

The numbers quoted in EXPERIMENTS.md come from this experiment.
"""

from __future__ import annotations

from repro.analysis.quality import (
    congestion_savings,
    prediction_regret,
    pruning_quality,
)
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.experiments.runner import ExperimentConfig, ExperimentTable
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import flatten_groups, generate_query_groups

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentTable:
    """Compute the quality metrics on every configured dataset."""
    table = ExperimentTable(
        title="Quality report — pruning agreement, prediction regret, savings",
        headers=[
            "Dataset",
            "path agree",
            "mean gap",
            "cand ratio",
            "regret",
            "flow saved",
            "detour",
        ],
        notes=[
            "path agree / mean gap / cand ratio: FAHL-W vs FAHL-O;",
            "regret: relative extra true congestion from predicted-flow "
            "routing; flow saved / detour: vs the spatial shortest path.",
        ],
    )
    for name in config.datasets:
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        frn = dataset.frn
        index = FAHLIndex.from_frn(frn, beta=config.beta)
        queries = flatten_groups(
            generate_query_groups(
                frn,
                num_groups=config.num_groups,
                queries_per_group=config.queries_per_group,
                seed=config.seed,
            )
        )
        reference = FlowAwareEngine(
            frn, oracle=index, alpha=config.alpha, eta_u=config.eta_u,
            pruning="none", max_candidates=config.max_candidates,
        )
        pruned = FlowAwareEngine(
            frn, oracle=index, alpha=config.alpha, eta_u=config.eta_u,
            pruning="lemma4", max_candidates=config.max_candidates,
        )
        agreement = pruning_quality(reference, pruned, queries)
        regret = prediction_regret(
            frn, index, queries,
            alpha=config.alpha, eta_u=config.eta_u,
            max_candidates=config.max_candidates,
        )
        savings = congestion_savings(
            frn, index, queries,
            alpha=config.alpha, eta_u=config.eta_u,
            max_candidates=config.max_candidates,
        )
        table.add_row(
            name,
            agreement.path_agreement,
            agreement.mean_score_gap,
            agreement.mean_candidate_ratio,
            regret.relative_regret,
            savings["mean_flow_savings"],
            savings["mean_detour"],
        )
    return table
