"""Experiment harness: one module per table/figure of the paper's Section VI."""

from repro.experiments import (
    ablation_beta,
    ablation_pruning,
    fig6_query_groups,
    fig7_alpha,
    fig7_construction,
    fig8_structure_update,
    fig9_label_update,
    fig10_epochs,
    fig11_capacity,
    fig12_intervals,
    fig13_update_ratio,
    incidents,
    quality_report,
    table1_motivation,
    table3_datasets,
)
from repro.experiments.runner import (
    ALL_METHODS,
    BuiltMethod,
    ExperimentConfig,
    ExperimentTable,
    build_method,
    build_method_suite,
    format_table,
    time_queries,
)

#: registry used by the CLI: experiment id -> module with ``run(config)``
EXPERIMENTS = {
    "table1": table1_motivation,
    "table3": table3_datasets,
    "fig6": fig6_query_groups,
    "fig7ab": fig7_construction,
    "fig7cd": fig7_alpha,
    "fig8": fig8_structure_update,
    "fig9": fig9_label_update,
    "fig10": fig10_epochs,
    "fig11": fig11_capacity,
    "fig12": fig12_intervals,
    "fig13": fig13_update_ratio,
    "ablation-beta": ablation_beta,
    "ablation-pruning": ablation_pruning,
    "quality": quality_report,
    "incidents": incidents,
}

__all__ = [
    "ALL_METHODS",
    "BuiltMethod",
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentTable",
    "build_method",
    "build_method_suite",
    "format_table",
    "time_queries",
]
