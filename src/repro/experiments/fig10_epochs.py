"""Fig. 10: query time vs prediction-training epochs.

The flow predictor's accuracy grows with its epoch budget; FAHL's ordering
(and therefore its labels and query speed) consumes the prediction, while
H2H and TD-G-tree are flow-blind and stay flat — the paper's separation.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    build_method_suite,
    time_queries,
)
from repro.flow.predictor import TrainablePredictor
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_query_groups

__all__ = ["run", "DEFAULT_EPOCHS"]

DEFAULT_EPOCHS = (50, 100, 150, 200)

_METHODS = ("TD-G-tree", "H2H", "FAHL-W")


def run(
    config: ExperimentConfig,
    epoch_grid: tuple[int, ...] = DEFAULT_EPOCHS,
) -> ExperimentTable:
    """Regenerate the Fig. 10 series (ms per query; prediction accuracy)."""
    table = ExperimentTable(
        title="Fig. 10 — query time vs training epochs (ms per query)",
        headers=["Dataset", "Epochs", "Accuracy"] + list(_METHODS),
    )
    for name in config.datasets:
        for epochs in epoch_grid:
            dataset = load_dataset(
                name,
                scale=config.scale,
                days=config.days,
                interval_minutes=config.interval_minutes,
                epochs=epochs,
                seed=config.seed,
            )
            accuracy = (
                TrainablePredictor(epochs=epochs, seed=dataset.seed + 1)
                .fit(dataset.frn.flow)
                .accuracy(dataset.frn.flow)
            )
            suite = build_method_suite(dataset, config, methods=_METHODS)
            groups = generate_query_groups(
                dataset.frn,
                num_groups=config.num_groups,
                queries_per_group=config.queries_per_group,
                seed=config.seed,
            )
            queries = groups[-1]
            table.add_row(
                name,
                epochs,
                accuracy,
                *(time_queries(suite[m], queries) * 1000.0 for m in _METHODS),
            )
    return table
