"""Fig. 11: capacity-based flow Ĉ_f — dataset sweep and W_c sweep.

The ``+`` method variants replace the predicted flow with Def. 4's
capacity-based blend.  Only FAHL's index perceives the change (ordering and
pruning); the flow-blind baselines merely score with it.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    build_method_suite,
    time_queries,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_query_groups

__all__ = ["run", "DEFAULT_WCS"]

DEFAULT_WCS = (0.1, 0.3, 0.5, 0.7, 0.9)

_METHODS = ("TD-G-tree", "H2H", "FAHL-O", "FAHL-W")


def run(
    config: ExperimentConfig,
    w_c_grid: tuple[float, ...] = DEFAULT_WCS,
    sweep_dataset: str = "BRN",
) -> ExperimentTable:
    """Regenerate the Fig. 11 series (ms per query with Ĉ_f, FQ12).

    Rows with ``W_c = 0.5`` cover every dataset (Fig. 11's left panel); the
    ``sweep_dataset`` additionally sweeps the W_c grid (right panel).
    """
    table = ExperimentTable(
        title="Fig. 11 — capacity-based flow (ms per query, '+' variants)",
        headers=["Dataset", "W_c"] + [f"{m}+" for m in _METHODS],
    )
    for name in config.datasets:
        grid = w_c_grid if name == sweep_dataset else (0.5,)
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        groups = generate_query_groups(
            dataset.frn,
            num_groups=config.num_groups,
            queries_per_group=config.queries_per_group,
            seed=config.seed,
        )
        queries = groups[-1]
        for w_c in grid:
            suite = build_method_suite(
                dataset, config, methods=_METHODS, use_capacity=True, w_c=w_c
            )
            table.add_row(
                name,
                w_c,
                *(time_queries(suite[m], queries) * 1000.0 for m in _METHODS),
            )
    return table
