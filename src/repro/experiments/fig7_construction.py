"""Fig. 7(a)(b): index size and construction time per dataset.

The paper compares TD-G-tree, H2H and FAHL-W; CH is added for context.
FAHL's degree-flow ordering should yield labels no larger — typically
smaller — than H2H's on flow-skewed networks.
"""

from __future__ import annotations

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    build_method_suite,
)
from repro.workloads.datasets import load_dataset

__all__ = ["run"]

_METHODS = ("CH", "TD-G-tree", "H2H", "FAHL-W")


def run(config: ExperimentConfig) -> ExperimentTable:
    """Regenerate the Fig. 7(a)(b) bars (entries and build seconds)."""
    table = ExperimentTable(
        title="Fig. 7(a)(b) — index size (entries) and construction time (s)",
        headers=["Dataset"]
        + [f"{m} size" for m in _METHODS]
        + [f"{m} time" for m in _METHODS],
    )
    for name in config.datasets:
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        suite = build_method_suite(dataset, config, methods=_METHODS)
        table.add_row(
            name,
            *(suite[m].index_entries for m in _METHODS),
            *(suite[m].build_seconds for m in _METHODS),
        )
    return table
