"""Ablation: the degree/flow blend β of the joint ordering (Def. 7).

β = 0 degenerates FAHL to (normalised) degree ordering ≈ H2H; β = 1 orders
purely by flow.  The sweep shows how much index size the flow term costs
and what it buys in query time and result quality — the design choice
DESIGN.md calls out.
"""

from __future__ import annotations

from repro.analysis.quality import pruning_quality
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.experiments.runner import ExperimentConfig, ExperimentTable
from repro.graph.frn import FlowAwareRoadNetwork
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import flatten_groups, generate_query_groups

__all__ = ["run", "DEFAULT_BETAS"]

DEFAULT_BETAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def run(
    config: ExperimentConfig,
    betas: tuple[float, ...] = DEFAULT_BETAS,
) -> ExperimentTable:
    """Sweep β on the first configured dataset."""
    table = ExperimentTable(
        title="Ablation — ordering blend beta (index size, query quality)",
        headers=["beta", "entries", "treewidth", "treeheight",
                 "path agreement", "mean score gap"],
        notes=[
            "agreement/gap: FAHL-W (lemma4 + early stop) vs FAHL-O on the "
            "same index",
        ],
    )
    dataset = load_dataset(
        config.datasets[0],
        scale=config.scale,
        days=config.days,
        interval_minutes=config.interval_minutes,
        epochs=config.epochs,
        seed=config.seed,
    )
    queries = flatten_groups(
        generate_query_groups(
            dataset.frn,
            num_groups=config.num_groups,
            queries_per_group=config.queries_per_group,
            seed=config.seed,
        )
    )
    for beta in betas:
        frn = FlowAwareRoadNetwork(
            dataset.frn.graph.copy(),
            dataset.frn.flow,
            predicted_flow=dataset.frn.predicted_flow,
            lanes=dataset.frn.lanes,
        )
        index = FAHLIndex.from_frn(frn, beta=beta)
        reference = FlowAwareEngine(
            frn, oracle=index, alpha=config.alpha, eta_u=config.eta_u,
            pruning="none", max_candidates=config.max_candidates,
        )
        pruned = FlowAwareEngine(
            frn, oracle=index, alpha=config.alpha, eta_u=config.eta_u,
            pruning="lemma4", max_candidates=config.max_candidates,
        )
        quality = pruning_quality(reference, pruned, queries)
        table.add_row(
            beta,
            index.index_size_entries(),
            index.treewidth,
            index.treeheight,
            quality.path_agreement,
            quality.mean_score_gap,
        )
    return table
