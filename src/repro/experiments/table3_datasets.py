"""Table III: statistics of the (stand-in) datasets."""

from __future__ import annotations

from repro.experiments.runner import ExperimentConfig, ExperimentTable
from repro.workloads.datasets import load_dataset

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentTable:
    """Regenerate Table III for the configured scale."""
    table = ExperimentTable(
        title="Table III — dataset statistics (scaled stand-ins)",
        headers=["Dataset", "Vertices", "Edges", "Description", "Records"],
        notes=[
            "Synthetic stand-ins for T-drive/DIMACS networks; relative sizes "
            "follow the paper (BRN < NYC < BAY < COL).",
            f"Records = vertices x {config.days * 24 * 60 // config.interval_minutes}"
            " timesteps (7 days x 60 min in the paper).",
        ],
    )
    for name in config.datasets:
        dataset = load_dataset(
            name,
            scale=config.scale,
            days=config.days,
            interval_minutes=config.interval_minutes,
            epochs=config.epochs,
            seed=config.seed,
        )
        table.add_row(
            dataset.name,
            dataset.num_vertices,
            dataset.num_edges,
            dataset.description,
            dataset.num_records,
        )
    return table
