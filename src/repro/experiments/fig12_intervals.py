"""Fig. 12: query and update time vs the flow-recording time interval.

Shorter intervals mean more slices over the same horizon and therefore more
frequent update events; all methods pay more total update time and slightly
more query time, with FAHL degrading the least (the paper's claim).  Each
interval simulates a fixed wall-clock window of events: one update event
per slice, each carrying a small batch of weight changes (all methods) and
flow changes (FAHL only, via ISU).
"""

from __future__ import annotations

from repro import obs
from repro.core.maintenance import apply_flow_updates, apply_weight_update
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    build_method_suite,
    time_queries,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_query_groups
from repro.workloads.updates import generate_flow_updates, generate_weight_updates

__all__ = ["run", "DEFAULT_INTERVALS"]

DEFAULT_INTERVALS = (30, 60, 90, 120)

_METHODS = ("TD-G-tree", "H2H", "FAHL-W")

_WINDOW_HOURS = 6
_CHANGES_PER_EVENT = 2


def run(
    config: ExperimentConfig,
    intervals: tuple[int, ...] = DEFAULT_INTERVALS,
) -> ExperimentTable:
    """Regenerate the Fig. 12 series (query ms; total update ms per window)."""
    table = ExperimentTable(
        title=(
            "Fig. 12 — query time (ms) and total update time (ms) vs "
            f"time interval ({_WINDOW_HOURS}h window)"
        ),
        headers=["Dataset", "Interval"]
        + [f"{m} query" for m in _METHODS]
        + [f"{m} update" for m in _METHODS],
    )
    for name in config.datasets:
        for interval in intervals:
            dataset = load_dataset(
                name,
                scale=config.scale,
                days=config.days,
                interval_minutes=interval,
                epochs=config.epochs,
                seed=config.seed,
            )
            suite = build_method_suite(dataset, config, methods=_METHODS)
            events = max(1, (_WINDOW_HOURS * 60) // interval)
            update_ms = {m: 0.0 for m in _METHODS}
            for event in range(events):
                weight_updates = generate_weight_updates(
                    dataset.frn.graph,
                    _CHANGES_PER_EVENT,
                    seed=config.seed + event,
                )
                flow_updates = generate_flow_updates(
                    dataset.frn,
                    _CHANGES_PER_EVENT,
                    timestep=event % dataset.frn.num_timesteps,
                    seed=config.seed + event,
                )
                for method in _METHODS:
                    built = suite[method]
                    with obs.stopwatch(
                        metric="repro_experiment_phase_seconds",
                        span="experiment.fig12.update_event",
                        phase="fig12-update-event",
                        method=method,
                    ) as sw:
                        for u, v, new in weight_updates:
                            if method == "TD-G-tree":
                                built.index.update_edge_weight(u, v, new)
                            else:
                                apply_weight_update(built.index, u, v, new)
                        if method == "FAHL-W":
                            apply_flow_updates(
                                built.index, flow_updates, method="isu"
                            )
                    update_ms[method] += sw.ms
            groups = generate_query_groups(
                dataset.frn,
                num_groups=config.num_groups,
                queries_per_group=config.queries_per_group,
                seed=config.seed,
            )
            queries = groups[-1]
            table.add_row(
                name,
                interval,
                *(time_queries(suite[m], queries) * 1000.0 for m in _METHODS),
                *(update_ms[m] for m in _METHODS),
            )
    return table
